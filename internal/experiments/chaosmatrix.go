package experiments

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/chaos"
	"smartconf/internal/dfs"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/kvstore"
	"smartconf/internal/llmserve"
	"smartconf/internal/mapred"
	"smartconf/internal/memsim"
	"smartconf/internal/proptest"
	"smartconf/internal/rpcserver"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// The chaos matrix runs every substrate's SmartConf control loop through the
// injector catalog and judges each run with the proptest oracle set. Every
// cell is a pure function of (substrate, fault, seed) — the same determinism
// contract as the figure artifacts — so cells are served from the engine run
// cache and any verdict reproduces from its coordinates alone.

// ChaosGenerated is the pseudo-fault name selecting a seed-generated plan
// (proptest.GenPlan) instead of a named catalog entry. The property tests
// use it; the bench matrix sticks to the named catalog.
const ChaosGenerated = "gen"

// ChaosSeed is the seed of the bench's chaos artifact.
const ChaosSeed = 1

// ChaosSubstrates lists the matrix rows (all five substrates, fixed order).
func ChaosSubstrates() []string {
	return []string{"HB2149", "HB3813", "HD4995", "LLMKV", "MR2820"}
}

// ChaosFaults lists the matrix columns: the named injector catalog. Loop
// faults mean the same thing everywhere; plant-shift and surge are bound to
// a substrate-specific disturbance in each harness (worker loss, flush-rate
// drop, lock-cost increase, decode-amplification shift, co-tenant surge).
func ChaosFaults() []string {
	return []string{
		"sensor-noise", "sensor-dropout", "act-delay",
		"ctrl-stall", "crash-restart", "plant-shift", "surge",
	}
}

// ChaosCell names one matrix cell.
type ChaosCell struct {
	Substrate string
	Fault     string
	Seed      int64
}

// RunChaosCell executes one cell through the run cache: repeated matrix
// builds (and overlapping cells across worker counts) are served without
// re-simulation, which is sound because cells are deterministic in the key.
func RunChaosCell(cell ChaosCell) proptest.Report {
	return memoKeyed("CHAOS-"+cell.Substrate, cell.Fault, "chaos", cell.Seed, func() proptest.Report {
		return runChaosCell(cell.Substrate, cell.Fault, cell.Seed, nil)
	})
}

// RunChaosProperty runs a substrate under the seed-generated fault plan,
// bypassing the run cache: the replay oracle needs two genuine executions.
func RunChaosProperty(substrate string, seed int64) proptest.Report {
	return runChaosCell(substrate, ChaosGenerated, seed, nil)
}

// runChaosCell dispatches one cell; hooks (nil for production cells) carry
// the decision-log capture ring and/or a counterfactual perturbation.
func runChaosCell(substrate, fault string, seed int64, hooks *ChaosHooks) proptest.Report {
	switch substrate {
	case "HB2149":
		return runChaosHB2149(fault, seed, hooks)
	case "HB3813":
		return runChaosHB3813(fault, seed, hooks)
	case "HD4995":
		return runChaosHD4995(fault, seed, hooks)
	case "LLMKV":
		return runChaosLLMKV(fault, seed, hooks)
	case "MR2820":
		return runChaosMR2820(fault, seed, hooks)
	}
	panic(fmt.Sprintf("chaos: unknown substrate %q", substrate))
}

// ChaosMatrix runs the full fault × substrate matrix, fanned out across the
// experiment engine's worker pool.
func ChaosMatrix(seed int64) []proptest.Report {
	var cells []ChaosCell
	for _, f := range ChaosFaults() {
		for _, s := range ChaosSubstrates() {
			cells = append(cells, ChaosCell{Substrate: s, Fault: f, Seed: seed})
		}
	}
	return engine.MapSlice(cells, RunChaosCell)
}

// ChaosOracleParams bundles the per-substrate oracle tolerances: Settle
// bounds the post-fault settling transient (a few control periods — flush
// cycles for HB2149, du lock holds for HD4995, the 15 s sense cadence for
// LLMKV), Recover bounds re-convergence after the last fault clears, and
// MinProgress is the work floor below which "survived" would be vacuous.
type ChaosOracleParams struct {
	Settle      time.Duration
	Recover     time.Duration
	MinProgress int64
}

// ChaosParams returns the oracle tolerances for a substrate.
func ChaosParams(substrate string) ChaosOracleParams {
	switch substrate {
	case "HB2149":
		return ChaosOracleParams{Settle: 90 * time.Second, Recover: 90 * time.Second, MinProgress: 1000}
	case "HB3813":
		return ChaosOracleParams{Settle: 45 * time.Second, Recover: 60 * time.Second, MinProgress: 1000}
	case "HD4995":
		return ChaosOracleParams{Settle: 120 * time.Second, Recover: 120 * time.Second, MinProgress: 2}
	case "LLMKV":
		return ChaosOracleParams{Settle: 60 * time.Second, Recover: 90 * time.Second, MinProgress: 500}
	case "MR2820":
		return ChaosOracleParams{Settle: 60 * time.Second, Recover: 120 * time.Second, MinProgress: 6}
	}
	panic(fmt.Sprintf("chaos: unknown substrate %q", substrate))
}

// ChaosVerdict applies the oracle set to a report and returns "ok" or
// "FAIL:<first-broken-invariant>".
func ChaosVerdict(r *proptest.Report) string {
	p := ChaosParams(r.Substrate)
	checks := []struct {
		label string
		err   error
	}{
		{"deadlock", proptest.Drains(r)},
		{"no-progress", proptest.MakesProgress(r, p.MinProgress)},
		{"conf-bounds", proptest.ConfInBounds(r)},
		{"goal", proptest.HardGoalBounded(r, p.Settle)},
		{"no-recovery", proptest.RecoversAfterClearance(r, p.Recover)},
	}
	for _, c := range checks {
		if c.err != nil {
			return "FAIL:" + c.label
		}
	}
	return "ok"
}

// RenderChaos formats the matrix. The trailing fingerprint hashes every
// cell's trajectory fingerprint in fixed order: byte-identical across worker
// counts and across repeated builds of the same seed.
func RenderChaos(reports []proptest.Report) string {
	subs := ChaosSubstrates()
	faults := ChaosFaults()
	idx := map[string]proptest.Report{}
	var seed int64
	for _, r := range reports {
		idx[r.Substrate+"/"+r.Plan] = r
		seed = r.Seed
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos matrix: invariant verdicts per injected fault (seed %d)\n", seed)
	fmt.Fprintln(&b, "oracles: drains, makes-progress, conf-in-bounds, goal-bounded(+settle), recovers-after-clearance")
	fmt.Fprintf(&b, "\n%-16s", "fault")
	for _, s := range subs {
		fmt.Fprintf(&b, " %-12s", s)
	}
	fmt.Fprintln(&b)
	for _, f := range faults {
		fmt.Fprintf(&b, "%-16s", f)
		for _, sub := range subs {
			cell := "-"
			if r, ok := idx[sub+"/"+f]; ok {
				cell = ChaosVerdict(&r)
			}
			fmt.Fprintf(&b, " %-12s", cell)
		}
		fmt.Fprintln(&b)
	}
	h := fnv.New64a()
	for _, f := range faults {
		for _, sub := range subs {
			if r, ok := idx[sub+"/"+f]; ok {
				fmt.Fprintf(h, "%s/%s=%s;", sub, f, r.Fingerprint)
			}
		}
	}
	fmt.Fprintf(&b, "\nreplay: each cell is a pure function of (substrate, fault, seed); matrix fingerprint %016x\n", h.Sum64())
	return b.String()
}

// chaosTune sets per-substrate loop-fault amplitudes: each scenario is
// stressed at the edge of, not beyond, its engineered margin (a sensor-noise
// sigma that routinely OOMs a hard-goal substrate would test the margin's
// size, not the controller).
type chaosTune struct {
	noise float64       // sensor-noise sigma
	drop  float64       // sensor-dropout probability
	delay time.Duration // actuation delay
	stall time.Duration // controller stall / crash outage
}

// windowedShift is a plant disturbance with a clearance: apply at Start,
// revert at Start+Duration. Defined here rather than in internal/chaos to
// exercise the Fault extension point — substrates can grow their own fault
// types without touching the injector package. A PERMANENT gain shift is
// deliberately not in the catalog: a controller synthesized from a stale
// profile keeps a residual oscillation forever (the paper's remedy is
// re-profiling, §6), so "inject and never clear" would test the profile's
// staleness, not the controller.
type windowedShift struct {
	label    string
	start    time.Duration
	duration time.Duration
	apply    func()
	revert   func()
}

func (f windowedShift) Name() string { return "plant-shift:" + f.label }

func (f windowedShift) Span(time.Duration) chaos.Window {
	return chaos.Window{Start: f.start, End: f.start + f.duration}
}

func (f windowedShift) Arm(env *chaos.Env) {
	env.Sim.At(f.start, f.apply)
	env.Sim.At(f.start+f.duration, f.revert)
}

// chaosPlanFor resolves a fault name to a plan: "gen" draws from the
// property-test generator, loop faults come from the shared catalog with the
// substrate's tune, and anything else must be a substrate plant fault.
func chaosPlanFor(fault string, seed int64, start, dur, horizon time.Duration,
	tune chaosTune, knobLo, knobHi float64, plant func() []chaos.Fault) *chaos.Plan {
	if fault == ChaosGenerated {
		return proptest.GenPlan(fault, seed, horizon, knobLo, knobHi)
	}
	var f chaos.Fault
	switch fault {
	case "sensor-noise":
		f = chaos.SensorNoise{Start: start, Duration: dur, Sigma: tune.noise}
	case "sensor-dropout":
		f = chaos.SensorDropout{Start: start, Duration: dur, Prob: tune.drop}
	case "act-delay":
		f = chaos.ActuationDelay{Start: start, Duration: dur, Delay: tune.delay}
	case "ctrl-stall":
		f = chaos.ControllerStall{Start: start, Duration: tune.stall}
	case "crash-restart":
		f = chaos.ControllerCrash{At: start, RestartAfter: tune.stall}
	default:
		if fs := plant(); fs != nil {
			return &chaos.Plan{Name: fault, Seed: seed, Faults: fs}
		}
		panic(fmt.Sprintf("chaos: unknown fault %q", fault))
	}
	return &chaos.Plan{Name: fault, Seed: seed, Faults: []chaos.Fault{f}}
}

// runChaosHB3813: the RPC server's hard memory goal under fault injection.
// Plant shift: half the worker pool disappears (drain rate drops).
func runChaosHB3813(fault string, seed int64, hooks *ChaosHooks) proptest.Report {
	const (
		horizon = 300 * time.Second
		fStart  = 100 * time.Second
		fDur    = 60 * time.Second
	)
	tune := chaosTune{noise: 0.05, drop: 0.8, delay: 2 * time.Second, stall: 45 * time.Second}

	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed + 38130))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)

	newIC := func() *smartconf.IndirectConf {
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "ipc.server.max.queue.size",
			Metric:  "memory_consumption",
			Goal:    float64(rpcMemoryGoal),
			Hard:    true,
			Initial: 0,
			Min:     0, Max: 5000,
		}, publicProfile(ProfileHB3813()), nil, hooks.confOpts()...)
		if err != nil {
			panic(fmt.Sprintf("chaos HB3813 synthesis: %v", err))
		}
		return ic
	}
	ic := newIC()
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) { return float64(heap.Used()), float64(sv.QueueLen()) },
		Step: func(perf, deputy float64) float64 {
			ic.SetPerf(perf, deputy)
			return ic.Value()
		},
		Actuate: func(v float64) { sv.SetMaxQueue(int(v)) },
		Rebuild: func() func(perf, deputy float64) float64 {
			// Crash recovery: state is re-synthesized from the persisted
			// profile; the §5.3 deputy-based update re-anchors on the first
			// post-restart sample, so no controller state needs to survive.
			ic = newIC()
			return func(perf, deputy float64) float64 { ic.SetPerf(perf, deputy); return ic.Value() }
		},
		Log: hooks.logRef(),
	})
	sv.BeforeAdmit = loop.Tick

	plan := chaosPlanFor(fault, seed, fStart, fDur, horizon, tune, 0, 5000, func() []chaos.Fault {
		switch fault {
		case "plant-shift":
			return []chaos.Fault{chaos.PlantShift{Label: "worker-loss", At: fStart,
				Apply: func() { sv.SetWorkers(sv.Workers() / 2) }}}
		case "surge":
			return []chaos.Fault{chaos.WorkloadSurge{Start: fStart, Duration: fDur, Factor: 2}}
		}
		return nil
	})
	env := plan.Arm(s, loop)

	heapNoise(s, heap, rng, rpcNoiseMax, horizon)
	gen := workload.NewYCSB(seed+38131, 1000, workload.YCSBPhase{Name: "write-heavy", WriteRatio: 1, RequestBytes: 1 * mb})
	s.Every(0, hb3813BurstEvery, func() bool {
		n := int(float64(hb3813BurstSize) * env.SurgeFactor())
		n += rng.Intn(n/5+1) - n/10
		for i := 0; i < n; i++ {
			op := gen.NextOp()
			s.After(time.Duration(i)*hb3813Spacing, func() { sv.Offer(op) })
		}
		return s.Now() < horizon
	})

	rep := &proptest.Report{
		Substrate: "HB3813", Plan: plan.Name, Seed: seed, Horizon: horizon,
		Goal: []proptest.Sample{{T: 0, V: float64(rpcMemoryGoal)}}, Upper: true,
		KnobMin: 0, KnobMax: 5000,
		Faults: plan.Windows(horizon),
	}
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	s.Every(time.Second, time.Second, func() bool {
		rep.Metric = append(rep.Metric, proptest.Sample{T: s.Now(), V: float64(heap.Used())})
		rep.Knob = append(rep.Knob, proptest.Sample{T: s.Now(), V: float64(sv.MaxQueue())})
		return s.Now() < horizon && !heap.OOM()
	})
	s.RunUntil(horizon)

	rep.Drained = s.Now() >= horizon
	rep.Progress = sv.Completed()
	rep.Crashed = heap.OOM()
	rep.CrashedAt = oomAt
	rep.ComputeFingerprint()
	return *rep
}

// runChaosHB2149: the memstore's soft block-time goal under fault injection.
// Plant shift: the flush drain rate halves (disk contention).
func runChaosHB2149(fault string, seed int64, hooks *ChaosHooks) proptest.Report {
	const (
		horizon = 300 * time.Second
		fStart  = 100 * time.Second
		fDur    = 60 * time.Second
	)
	tune := chaosTune{noise: 0.08, drop: 0.7, delay: 3 * time.Second, stall: 60 * time.Second}

	s := newScenarioSim()
	heap := memsim.NewHeap(2 << 30)
	st := kvstore.NewMemstore(s, heap, hb2149Config(), 0.5)

	newSC := func() *smartconf.Conf {
		sc, err := smartconf.New(smartconf.Spec{
			Name:    "global.memstore.lowerLimit",
			Metric:  "write_block_time",
			Goal:    hb2149Goal1,
			Hard:    false,
			Initial: 0.5,
			Min:     0.01, Max: 1,
		}, publicProfile(ProfileHB2149()), hooks.confOpts()...)
		if err != nil {
			panic(fmt.Sprintf("chaos HB2149 synthesis: %v", err))
		}
		return sc
	}
	sc := newSC()
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) { return st.BlockTimes().Last().Seconds(), 0 },
		Step: func(perf, _ float64) float64 {
			sc.SetPerf(perf)
			return sc.Value()
		},
		Actuate: func(v float64) { st.SetFlushFraction(v) },
		Rebuild: func() func(perf, deputy float64) float64 {
			sc = newSC()
			return func(perf, _ float64) float64 { sc.SetPerf(perf); return sc.Value() }
		},
		Log: hooks.logRef(),
	})
	// Gate on a completed flush: the run's first flush has no block
	// measurement behind it, and feeding the tracker's zero value would hand
	// the controller a phantom "0 s block" sample.
	st.BeforeFlush = func() {
		if st.BlockTimes().Count() > 0 {
			loop.Tick()
		}
	}

	plan := chaosPlanFor(fault, seed, fStart, fDur, horizon, tune, 0.01, 1, func() []chaos.Fault {
		switch fault {
		case "plant-shift":
			// 64→36 MB/s: a 1.78× gain error — inside the §5.2 stability
			// margin (2× is the boundary), so the loop converges while the
			// episode lasts instead of ringing.
			return []chaos.Fault{windowedShift{label: "flush-rate-drop", start: fStart, duration: fDur,
				apply:  func() { st.SetFlushBytesPerSec(36 * mb) },
				revert: func() { st.SetFlushBytesPerSec(hb2149Config().FlushBytesPerSec) }}}
		case "surge":
			return []chaos.Fault{chaos.WorkloadSurge{Start: fStart, Duration: fDur, Factor: 2}}
		}
		return nil
	})
	env := plan.Arm(s, loop)

	gen := workload.NewYCSB(seed+21490, 1000, workload.YCSBPhase{Name: "write-heavy", WriteRatio: 1, RequestBytes: 1 * mb})
	s.Every(0, hb2149WriteEvery, func() bool {
		for i := 0; i < int(env.SurgeFactor()+0.5); i++ {
			st.Write(gen.NextOp().Bytes)
		}
		return s.Now() < horizon && !st.Crashed()
	})

	rep := &proptest.Report{
		Substrate: "HB2149", Plan: plan.Name, Seed: seed, Horizon: horizon,
		// Soft goal: SLA-like, judged with the scenario's 5% slack.
		Goal: []proptest.Sample{{T: 0, V: hb2149Goal1 * 1.05}}, Upper: true,
		KnobMin: 0.01, KnobMax: 1,
		Faults: plan.Windows(horizon),
	}
	seen := int64(0)
	s.Every(time.Second, time.Second, func() bool {
		if n := st.BlockTimes().Count(); n > seen {
			rep.Metric = append(rep.Metric, proptest.Sample{T: s.Now(), V: st.BlockTimes().Last().Seconds()})
			seen = n
		}
		rep.Knob = append(rep.Knob, proptest.Sample{T: s.Now(), V: st.FlushFraction()})
		return s.Now() < horizon && !st.Crashed()
	})
	s.RunUntil(horizon)

	rep.Drained = s.Now() >= horizon
	rep.Progress = st.Writes()
	rep.Crashed = st.Crashed()
	rep.ComputeFingerprint()
	return *rep
}

// runChaosHD4995: the namenode's soft lock-hold goal under fault injection.
// Plant shift: the per-file traversal cost doubles (cold dentry cache).
func runChaosHD4995(fault string, seed int64, hooks *ChaosHooks) proptest.Report {
	const (
		horizon = 360 * time.Second
		fStart  = 120 * time.Second
		fDur    = 60 * time.Second
		duEvery = 90 * time.Second
	)
	tune := chaosTune{noise: 0.06, drop: 0.7, delay: 2 * time.Second, stall: 60 * time.Second}

	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed + 49950))
	nn := dfs.New(s, hd4995Config(), 1)

	newIC := func() *smartconf.IndirectConf {
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "content-summary.limit",
			Metric:  "writer_block_time",
			Goal:    hd4995Goal1,
			Hard:    false,
			Initial: 1,
			Min:     1, Max: 1e7,
		}, publicProfile(ProfileHD4995()), nil, hooks.confOpts()...)
		if err != nil {
			panic(fmt.Sprintf("chaos HD4995 synthesis: %v", err))
		}
		return ic
	}
	ic := newIC()
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) {
			return nn.HoldTimes().Last().Seconds(), float64(nn.LastChunkFiles())
		},
		Step: func(perf, deputy float64) float64 {
			ic.SetPerf(perf, deputy)
			return ic.Value()
		},
		Actuate: func(v float64) { nn.SetLimit(int(v)) },
		Rebuild: func() func(perf, deputy float64) float64 {
			ic = newIC()
			return func(perf, deputy float64) float64 { ic.SetPerf(perf, deputy); return ic.Value() }
		},
		Log: hooks.logRef(),
	})
	// Same phantom-measurement gate as HB2149: the first chunk of the run
	// has no completed hold to report.
	nn.BeforeChunk = func() {
		if nn.HoldTimes().Count() > 0 {
			loop.Tick()
		}
	}

	plan := chaosPlanFor(fault, seed, fStart, fDur, horizon, tune, 1, 1e7, func() []chaos.Fault {
		switch fault {
		case "plant-shift":
			// ×1.5 per-file cost: a gain error inside the §5.2 stability
			// margin (a full doubling sits exactly on the oscillation
			// boundary and never settles).
			return []chaos.Fault{windowedShift{label: "lock-cost-up", start: fStart, duration: fDur,
				apply:  func() { nn.SetPerFileCost(3 * hd4995Config().PerFileCost / 2) },
				revert: func() { nn.SetPerFileCost(hd4995Config().PerFileCost) }}}
		case "surge":
			return []chaos.Fault{chaos.WorkloadSurge{Start: fStart, Duration: fDur, Factor: 2}}
		}
		return nil
	})
	env := plan.Arm(s, loop)

	// Multi-client writer load (20 writes/s with jitter), scaled by surge.
	s.Every(0, 50*time.Millisecond, func() bool {
		if rng.Float64() < 0.95 {
			for i := 0; i < int(env.SurgeFactor()+0.5); i++ {
				nn.Write()
			}
		}
		return s.Now() < horizon
	})
	s.Every(10*time.Second, duEvery, func() bool {
		nn.Du(nil)
		return s.Now() < horizon
	})

	rep := &proptest.Report{
		Substrate: "HD4995", Plan: plan.Name, Seed: seed, Horizon: horizon,
		// Initial-convergence grace (the controller climbs from limit=1),
		// then the soft goal with the scenario's 5% slack.
		Goal: []proptest.Sample{
			{T: 0, V: 1e12},
			{T: 60 * time.Second, V: hd4995Goal1 * 1.05},
		},
		Upper:   true,
		KnobMin: 1, KnobMax: 1e7,
		Faults: plan.Windows(horizon),
	}
	seen := int64(0)
	s.Every(time.Second, time.Second, func() bool {
		if n := nn.HoldTimes().Count(); n > seen {
			rep.Metric = append(rep.Metric, proptest.Sample{T: s.Now(), V: nn.HoldTimes().Last().Seconds()})
			seen = n
		}
		rep.Knob = append(rep.Knob, proptest.Sample{T: s.Now(), V: float64(nn.Limit())})
		return s.Now() < horizon
	})
	s.RunUntil(horizon)

	rep.Drained = s.Now() >= horizon
	rep.Progress = nn.DusDone()
	rep.ComputeFingerprint()
	return *rep
}

// runChaosLLMKV: the LLM server's hard GPU-memory goal under fault
// injection. Plant shift: the workload swings from long-document
// summarization (low decode amplification) into bursty chat (every admitted
// prompt token drags ~3× its size in uncounted decode KV).
func runChaosLLMKV(fault string, seed int64, hooks *ChaosHooks) proptest.Report {
	const (
		horizon = 300 * time.Second
		fStart  = 100 * time.Second
		fDur    = 60 * time.Second
	)
	tune := chaosTune{noise: 0.03, drop: 0.7, delay: 5 * time.Second, stall: 45 * time.Second}

	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed + 90010))
	heap := memsim.NewHeap(llmHeapCapacity)
	sv := llmserve.New(s, heap, llmConfig())
	kvb := float64(llmKVPerToken())
	maxTokens := float64(llmHeapCapacity) / kvb

	newIC := func() *smartconf.IndirectConf {
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:    "max.num.batched.tokens",
			Metric:  "gpu_memory_consumption",
			Goal:    float64(llmMemoryGoal),
			Hard:    true,
			Initial: 0,
			Min:     0, Max: float64(llmHeapCapacity),
		}, publicProfile(ProfileLLMKV()), smartconf.Scale(1/kvb), hooks.confOpts()...)
		if err != nil {
			panic(fmt.Sprintf("chaos LLMKV synthesis: %v", err))
		}
		return ic
	}
	ic := newIC()
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) {
			return float64(heap.Used()), float64(sv.PromptTokens()) * kvb
		},
		Step: func(perf, deputy float64) float64 {
			ic.SetPerf(perf, deputy)
			return ic.Value()
		},
		Actuate: func(v float64) { sv.SetMaxBatchedTokens(int(v)) },
		Rebuild: func() func(perf, deputy float64) float64 {
			ic = newIC()
			return func(perf, deputy float64) float64 { ic.SetPerf(perf, deputy); return ic.Value() }
		},
		Log: hooks.logRef(),
	})
	s.Every(0, 15*time.Second, func() bool {
		loop.Tick()
		return s.Now() < horizon && !sv.Crashed()
	})

	// Chat at 40 req/s (the figure scenario's 60 req/s overload runs the
	// heap at ~99% of capacity — no margin left for injected faults; chaos
	// stresses the controller, not the margin's exact size).
	chat := workload.LLMPhase{Name: "chat", RequestsPerSec: 40, PromptMean: 150, OutputMean: 300,
		BurstSize: 40, BurstSpacing: 50 * time.Millisecond}
	summarize := workload.LLMPhase{Name: "summarize", RequestsPerSec: 12, PromptMean: 1800, OutputMean: 220}
	phases := []workload.LLMPhase{chat}
	if fault == "plant-shift" {
		// Start in the benign regime; the shift drops chat on a knob that
		// has opened up for documents.
		phases[0] = summarize
	}
	plan := chaosPlanFor(fault, seed, fStart, fDur, horizon, tune, 0, maxTokens, func() []chaos.Fault {
		switch fault {
		case "plant-shift":
			return []chaos.Fault{chaos.PlantShift{Label: "decode-amplification", At: fStart,
				Apply: func() { phases[0] = chat }}}
		case "surge":
			return []chaos.Fault{chaos.WorkloadSurge{Start: fStart, Duration: fDur, Factor: 2}}
		}
		return nil
	})
	env := plan.Arm(s, loop)

	heapNoise(s, heap, rng, llmNoiseMax, horizon)
	chaosLLMDrive(s, sv, phases, seed+90011, horizon, env)

	rep := &proptest.Report{
		Substrate: "LLMKV", Plan: plan.Name, Seed: seed, Horizon: horizon,
		// Initial-convergence grace (the knob opens from 0 and the first
		// correction overshoots into the engineered margin), then the goal.
		Goal: []proptest.Sample{
			{T: 0, V: 1e12},
			{T: 60 * time.Second, V: float64(llmMemoryGoal)},
		},
		Upper:   true,
		KnobMin: 0, KnobMax: maxTokens,
		Faults: plan.Windows(horizon),
	}
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })
	s.Every(time.Second, time.Second, func() bool {
		rep.Metric = append(rep.Metric, proptest.Sample{T: s.Now(), V: float64(heap.Used())})
		rep.Knob = append(rep.Knob, proptest.Sample{T: s.Now(), V: float64(sv.MaxBatchedTokens())})
		return s.Now() < horizon && !heap.OOM()
	})
	s.RunUntil(horizon)

	rep.Drained = s.Now() >= horizon
	rep.Progress = sv.Completed()
	rep.Crashed = heap.OOM()
	rep.CrashedAt = oomAt
	rep.ComputeFingerprint()
	return *rep
}

// chaosLLMDrive is llmDrive with surge-aware bursts and a phase slice whose
// backing array a PlantShift may mutate mid-run.
func chaosLLMDrive(s *sim.Simulation, sv *llmserve.Server, phases []workload.LLMPhase, seed int64, until time.Duration, env *chaos.Env) {
	gen := workload.NewLLMGen(seed, phases[0])
	var arrive func()
	arrive = func() {
		if s.Now() >= until {
			return
		}
		if ph, _ := workload.LLMPhaseAt(phases, s.Now()); ph.Name != gen.Phase().Name {
			gen.SetPhase(ph)
		}
		sv.Offer(gen.NextRequest())
		s.After(gen.NextInterarrival(), arrive)
	}
	s.After(0, arrive)
	s.Every(llmBurstEvery, llmBurstEvery, func() bool {
		ph, _ := workload.LLMPhaseAt(phases, s.Now())
		if ph.Name != gen.Phase().Name {
			gen.SetPhase(ph)
		}
		n := int(float64(ph.BurstSize) * env.SurgeFactor())
		for i := 0; i < n; i++ {
			req := gen.NextRequest()
			s.After(time.Duration(i)*ph.BurstSpacing, func() { sv.Offer(req) })
		}
		return s.Now() < until
	})
}

// runChaosMR2820: the MapReduce cluster's hard out-of-disk goal under fault
// injection. Plant shift: the task write rate halves (I/O contention).
// Surge: the co-tenant band jumps up — the scenario's own disturbance,
// intensified.
func runChaosMR2820(fault string, seed int64, hooks *ChaosHooks) proptest.Report {
	const (
		active = 360 * time.Second // fault-placement window basis
		fStart = 120 * time.Second
		fDur   = 60 * time.Second
		bound  = 3600 * time.Second // safety bound; jobs end far earlier
	)
	tune := chaosTune{noise: 0.02, drop: 0.6, delay: 2 * time.Second, stall: 30 * time.Second}

	s := newScenarioSim()
	rng := rand.New(rand.NewSource(seed + 28200))
	c := mapred.New(s, mr2820Config(), 0)

	newSC := func() *smartconf.Conf {
		sc, err := smartconf.New(smartconf.Spec{
			Name:    "local.dir.minspacestart",
			Metric:  "disk_consumption",
			Goal:    float64(mr2820DiskGoal),
			Hard:    true,
			Initial: 512 * float64(mb),
			Min:     0, Max: 1 << 30,
		}, publicProfile(ProfileMR2820()), hooks.confOpts()...)
		if err != nil {
			panic(fmt.Sprintf("chaos MR2820 synthesis: %v", err))
		}
		return sc
	}
	sc := newSC()
	var curW *mapred.Worker
	var curNext int64
	loop := chaos.NewLoop(s, chaos.LoopConfig{
		Sense: func() (float64, float64) {
			return float64(curW.Disk.Used() + curW.Committed() + curNext), 0
		},
		Step: func(perf, _ float64) float64 {
			sc.SetPerf(perf)
			return sc.Value()
		},
		Actuate: func(v float64) { c.SetMinSpaceStart(int64(v)) },
		Rebuild: func() func(perf, deputy float64) float64 {
			sc = newSC()
			return func(perf, _ float64) float64 { sc.SetPerf(perf); return sc.Value() }
		},
		Log: hooks.logRef(),
	})
	c.BeforeSchedule = func(w *mapred.Worker, next int64) {
		curW, curNext = w, next
		loop.Tick()
	}

	plan := chaosPlanFor(fault, seed, fStart, fDur, active, tune, 0, 1<<30, func() []chaos.Fault {
		switch fault {
		case "plant-shift":
			return []chaos.Fault{chaos.PlantShift{Label: "task-rate-halved", At: fStart,
				Apply: func() { c.SetTaskBytesPerSec(8 * mb) }}}
		case "surge":
			return []chaos.Fault{chaos.WorkloadSurge{Start: fStart, Duration: fDur, Factor: 1.5}}
		}
		return nil
	})
	env := plan.Arm(s, loop)

	// The scenario's co-tenant walk, calibrated slightly below the figure
	// run (step 25 MB, band top 720 MB): a single co-tenant step larger
	// than the goal's 10 MB headroom can OOD an already-admitted task no
	// matter what the controller does, so the property "no crash for ANY
	// seed" requires the disturbance to stay within the margin the goal
	// engineered — the figure scenario acknowledges the same race by
	// judging over a 5-seed repetition instead. A surge lifts the band by
	// 100 MB × (factor−1), reached through the same bounded steps.
	const maxStep = 25 * mb
	low0, high0 := int64(550*mb), int64(720*mb)
	current := make([]int64, len(c.Workers()))
	for i, w := range c.Workers() {
		current[i] = (low0 + high0) / 2
		w.SetCoTenant(current[i])
	}
	s.Every(5*time.Second, 5*time.Second, func() bool {
		bump := int64((env.SurgeFactor() - 1) * float64(100*mb))
		low, high := low0+bump, high0+bump
		for i, w := range c.Workers() {
			step := int64(rng.Intn(int(2*maxStep+1))) - maxStep
			next := current[i] + step
			if next < low {
				next = low
			}
			if next > high {
				next = high
			}
			current[i] = next
			w.SetCoTenant(next)
		}
		return s.Now() < bound && !c.OOD()
	})

	rep := &proptest.Report{
		Substrate: "MR2820", Plan: plan.Name, Seed: seed, Horizon: bound,
		Goal: []proptest.Sample{{T: 0, V: float64(mr2820DiskGoal)}}, Upper: true,
		KnobMin: 0, KnobMax: 1 << 30,
		Faults: plan.Windows(active),
	}
	s.Every(time.Second, time.Second, func() bool {
		rep.Metric = append(rep.Metric, proptest.Sample{T: s.Now(), V: float64(c.MaxDiskUsed())})
		rep.Knob = append(rep.Knob, proptest.Sample{T: s.Now(), V: float64(c.MinSpaceStart())})
		return c.Busy() || s.Now() < 10*time.Second
	})

	jobs := mr2820Jobs()
	var finished int
	var runNext func(i int)
	runNext = func(i int) {
		if i >= len(jobs) {
			s.Stop()
			return
		}
		c.RunJob(jobs[i], func(r mapred.JobResult) {
			finished++
			runNext(i + 1)
		})
	}
	s.At(time.Second, func() { runNext(0) })
	s.RunUntil(bound)

	// Drained here means the job sequence ran to completion (the sim stops
	// early on success — the inverse of the fixed-horizon substrates).
	rep.Drained = finished == len(jobs)
	rep.Progress = int64(finished)
	rep.Crashed = c.OOD()
	if rep.Crashed {
		rep.CrashedAt = firstViolation(Series{Points: samplesToPoints(rep.Metric)}, float64(mr2820DiskGoal))
	}
	rep.ComputeFingerprint()
	return *rep
}

func samplesToPoints(ss []proptest.Sample) []Point {
	ps := make([]Point, len(ss))
	for i, s := range ss {
		ps[i] = Point{T: s.T, V: s.V}
	}
	return ps
}
