package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// The paper (§6.1): "SmartConf works in a wide variety of workload settings,
// but we do not have space to show that." This sweep shows it: ONE profile
// (the standard HB3813 campaign) synthesizes ONE controller configuration,
// which is then run against a grid of workloads it has never seen — varying
// burst size, cadence, request size, and write mix. The hard memory
// constraint must hold on every cell.

// RobustnessCell is one grid point.
type RobustnessCell struct {
	BurstSize     int
	BurstEverySec float64
	RequestMB     float64
	WriteRatio    float64
	ConstraintMet bool
	Violation     string
	Throughput    float64
}

// RobustnessGrid returns the workload grid.
func RobustnessGrid() []RobustnessCell {
	var cells []RobustnessCell
	for _, burst := range []int{150, 300, 450} {
		for _, every := range []float64{5, 7.5, 12.5} {
			for _, reqMB := range []float64{0.5, 1, 2} {
				for _, writes := range []float64{1.0, 0.7} {
					cells = append(cells, RobustnessCell{
						BurstSize: burst, BurstEverySec: every,
						RequestMB: reqMB, WriteRatio: writes,
					})
				}
			}
		}
	}
	return cells
}

// RunRobustnessSweep executes every grid cell with the one profiled
// controller and fills in the outcomes. The 54 cells are independent and fan
// out across the worker pool; each synthesizes from its own profile copy
// (synthesis is deterministic from the profile's content, so the copies
// change nothing about the results).
func RunRobustnessSweep() []RobustnessCell {
	profile := ProfileHB3813()
	return engine.MapSlice(RobustnessGrid(), func(cell RobustnessCell) RobustnessCell {
		policy := fmt.Sprintf("burst=%d every=%g req=%g writes=%g",
			cell.BurstSize, cell.BurstEverySec, cell.RequestMB, cell.WriteRatio)
		return memoKeyed("HB3813", policy, "robustness", 0, func() RobustnessCell {
			return runRobustnessCell(publicProfile(profile), cell)
		})
	})
}

func runRobustnessCell(profile *smartconf.Profile, cell RobustnessCell) RobustnessCell {
	s := newScenarioSim()
	// The cell spec is the scenario description, so the seed derives from it:
	// every (BurstSize, BurstEverySec) cell replays its own fixed stream.
	cellSeed := int64(cell.BurstSize)*1000 + int64(cell.BurstEverySec*10)
	rng := rand.New(rand.NewSource(cellSeed))
	heap := memsim.NewHeap(rpcHeapCapacity)
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)

	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "ipc.server.max.queue.size",
		Metric: "memory_consumption",
		Goal:   float64(rpcMemoryGoal),
		Hard:   true,
		Min:    0, Max: 5000,
	}, profile, nil)
	if err != nil {
		panic(err)
	}
	sv.BeforeAdmit = func() {
		ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		sv.SetMaxQueue(ic.Conf())
	}

	const runTime = 300 * time.Second
	heapNoise(s, heap, rng, rpcNoiseMax, runTime)
	var oomAt time.Duration
	heap.OnOOM(func() { oomAt = s.Now() })

	memS := Series{Name: "used_memory"}
	s.Every(time.Second, time.Second, func() bool {
		memS.Points = append(memS.Points, Point{s.Now(), float64(heap.Used())})
		return s.Now() < runTime && !heap.OOM()
	})

	w := &rpcWorkload{
		gen: workload.NewYCSB(1, 1000, workload.YCSBPhase{
			WriteRatio:   cell.WriteRatio,
			RequestBytes: int64(cell.RequestMB * float64(mb)),
		}),
		burstSize:  cell.BurstSize,
		burstEvery: time.Duration(cell.BurstEverySec * float64(time.Second)),
		spacing:    2 * time.Millisecond,
		phases: []workload.YCSBPhase{{
			Name:         "cell",
			WriteRatio:   cell.WriteRatio,
			RequestBytes: int64(cell.RequestMB * float64(mb)),
		}},
	}
	w.run(s, runTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(runTime)

	met, at, worst := evalUpperBound(memS, func(time.Duration) float64 { return float64(rpcMemoryGoal) })
	switch {
	case heap.OOM():
		cell.ConstraintMet = false
		cell.Violation = fmt.Sprintf("OOM at %.0fs", oomAt.Seconds())
	case !met:
		cell.ConstraintMet = false
		cell.Violation = fmt.Sprintf("memory %.0fMB at %.0fs", worst/float64(mb), at.Seconds())
	default:
		cell.ConstraintMet = true
	}
	cell.Throughput = float64(sv.Completed()) / runTime.Seconds()
	return cell
}

// RenderRobustness formats the sweep.
func RenderRobustness(cells []RobustnessCell) string {
	var b strings.Builder
	ok := 0
	for _, c := range cells {
		if c.ConstraintMet {
			ok++
		}
	}
	fmt.Fprintf(&b, "Workload-robustness sweep (HB3813 controller, one profile, %d unseen workloads)\n", len(cells))
	fmt.Fprintf(&b, "constraint held in %d/%d cells\n\n", ok, len(cells))
	fmt.Fprintf(&b, "%7s %9s %7s %7s %8s %10s  %s\n",
		"burst", "every(s)", "reqMB", "writes", "OK?", "ops/s", "violation")
	for _, c := range cells {
		mark := "ok"
		if !c.ConstraintMet {
			mark = "X"
		}
		fmt.Fprintf(&b, "%7d %9.1f %7.1f %7.1f %8s %10.2f  %s\n",
			c.BurstSize, c.BurstEverySec, c.RequestMB, c.WriteRatio, mark, c.Throughput, c.Violation)
	}
	return b.String()
}
