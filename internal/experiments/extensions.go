package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// Extension scenarios beyond the paper's six issues, exercising the metric
// classes its study says dominate (Table 4: most PerfConfs affect
// user-request latency) and the distributed deployment §6.6 discusses.

// --- Extension 1: a tail-latency SLA goal ---
//
// The queue bound that protects memory in HB3813 also shapes latency: a
// deep queue means requests wait behind hundreds of others. Here the user's
// goal is "p99 request latency ≤ SLA" (soft), and the trade-off is accepted
// throughput — deeper queue ⇒ fewer rejects but longer waits.

// SLAResult is the outcome of one latency-goal run.
type SLAResult struct {
	Policy        Policy
	P99           float64 // seconds, end-of-run window
	ConstraintMet bool
	Throughput    float64
}

const (
	slaRunTime = 400 * time.Second
	slaGoalSec = 4.0
)

// RunSLAScenario executes the latency-goal scenario under a policy.
func RunSLAScenario(p Policy) SLAResult {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(909))
	heap := memsim.NewHeap(4 << 30) // memory is NOT the constraint here
	sv := rpcserver.New(s, heap, rpcConfig())
	sv.SetMaxQueue(0)

	switch p.Kind {
	case StaticPolicy:
		sv.SetMaxQueue(int(p.Static))
	case SmartConfPolicy:
		// Profile p99 latency against the pinned queue bound. Unlike the
		// memory goals, latency relates to the BOUND itself (the worst wait
		// is set by how deep the queue may get), so this is a DIRECT
		// configuration — the paper's SmartConf class, not SmartConf_I.
		profile := profileSLA()
		sc, err := smartconf.New(smartconf.Spec{
			Name:    "ipc.server.max.queue.size",
			Metric:  "p99_latency",
			Goal:    slaGoalSec,
			Hard:    false, // SLA: soft constraint
			Initial: 1,
			Min:     1, Max: 5000,
		}, publicProfile(profile))
		if err != nil {
			panic(err)
		}
		// The controller runs on the SENSOR's timescale: a p99 estimate needs
		// a window of completions and lags the knob by about two burst
		// cycles, so the loop updates once per 15 s — faster sampling would
		// chase its own stale measurements (a lesson the percentile class of
		// Table 4 metrics forces on any controller).
		s.Every(15*time.Second, 15*time.Second, func() bool {
			p99 := sv.Latency().Percentile(99).Seconds() //sc:SLA:sensor
			sc.SetPerf(p99)                              //sc:SLA:invoke
			sv.SetMaxQueue(sc.Conf())                    //sc:SLA:invoke
			return s.Now() < slaRunTime
		})
	}

	w := &rpcWorkload{
		gen:        workload.NewYCSB(910, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
		burstSize:  hb3813BurstSize,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 * mb}},
	}
	var worstP99 float64
	s.Every(5*time.Second, 5*time.Second, func() bool {
		if s.Now() > 60*time.Second { // after convergence
			if v := sv.Latency().Percentile(99).Seconds(); v > worstP99 {
				worstP99 = v
			}
		}
		return s.Now() < slaRunTime
	})
	w.run(s, slaRunTime, rng, func(op workload.Op) { sv.Offer(op) })
	s.RunUntil(slaRunTime)

	return SLAResult{
		Policy:        p,
		P99:           worstP99,
		ConstraintMet: worstP99 <= slaGoalSec*1.1, // soft: 10% SLA slack
		Throughput:    float64(sv.Completed()) / slaRunTime.Seconds(),
	}
}

// profileSLA profiles p99 latency against four pinned queue bounds.
func profileSLA() core.Profile {
	return memoProfile("SLA", func() core.Profile {
		return profileSweep([]float64{30, 90, 180, 300}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			rng := rand.New(rand.NewSource(909))
			heap := memsim.NewHeap(4 << 30)
			sv := rpcserver.New(s, heap, rpcConfig())
			sv.SetMaxQueue(int(setting))
			taken := 0
			s.Every(10*time.Second, 5*time.Second, func() bool {
				if taken < 10 {
					record(setting, sv.Latency().Percentile(99).Seconds())
					taken++
				}
				return taken < 10
			})
			w := &rpcWorkload{
				gen:        workload.NewYCSB(909, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
				burstSize:  hb3813BurstSize,
				burstEvery: hb3813BurstEvery,
				spacing:    hb3813Spacing,
				phases:     []workload.YCSBPhase{{Name: "profiling", WriteRatio: 1, RequestBytes: 1 * mb}},
			}
			w.run(s, 70*time.Second, rng, func(op workload.Op) { sv.Offer(op) })
			s.RunUntil(70 * time.Second)
		})
	})
}

// RenderSLA formats the SLA comparison.
func RenderSLA(results []SLAResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: p99-latency SLA goal (≤ %.0fs) on the RPC queue bound\n", slaGoalSec)
	fmt.Fprintf(&b, "%-16s %10s %8s %12s\n", "policy", "p99(s)", "OK?", "ops/s")
	for _, r := range results {
		ok := "ok"
		if !r.ConstraintMet {
			ok = "X"
		}
		fmt.Fprintf(&b, "%-16s %10.2f %8s %12.2f\n", r.Policy, r.P99, ok, r.Throughput)
	}
	return b.String()
}

// BuildSLAComparison runs SmartConf plus a static sweep; the five
// independent runs fan out across the worker pool.
func BuildSLAComparison() []SLAResult {
	policies := []Policy{SmartConf(), Static(30), Static(90), Static(180), Static(400)}
	return engine.MapSlice(policies, func(p Policy) SLAResult {
		return memoKeyed("SLA", policyKey(p), "sla", 0,
			func() SLAResult { return RunSLAScenario(p) })
	})
}

// --- Extension 2: distributed deployment ---
//
// §6.6: "in distributed environment, additional inter-node communication may
// be required for some performance measurement and configuration
// adjustment". Here each node runs its OWN controller instance synthesized
// from the SAME profile — the natural scale-out — and every node must hold
// its local memory constraint while an imbalanced load balancer skews
// traffic across them.

// DistributedResult summarizes the multi-node run.
type DistributedResult struct {
	Nodes         int
	ConstraintMet bool
	Violations    []string
	// PerNodeKnob is each node's final queue bound — they differ because the
	// load differs, which is exactly why one global static value cannot fit.
	PerNodeKnob []int
	Throughput  float64
}

// RunDistributedHB3813 runs nodes RPC servers behind a skewed balancer, one
// controller per node. Memoized per cluster size.
func RunDistributedHB3813(nodes int) DistributedResult {
	return memoKeyed("HB3813", fmt.Sprintf("nodes=%d", nodes), "distributed", 0,
		func() DistributedResult { return runDistributedHB3813(nodes) })
}

func runDistributedHB3813(nodes int) DistributedResult {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(4444))
	profile := publicProfile(ProfileHB3813())

	servers := make([]*rpcserver.Server, nodes)
	heaps := make([]*memsim.Heap, nodes)
	res := DistributedResult{Nodes: nodes, ConstraintMet: true}
	for i := 0; i < nodes; i++ {
		i := i
		heaps[i] = memsim.NewHeap(rpcHeapCapacity)
		servers[i] = rpcserver.New(s, heaps[i], rpcConfig())
		servers[i].SetMaxQueue(0)
		ic, err := smartconf.NewIndirect(smartconf.Spec{
			Name:   fmt.Sprintf("node%d/ipc.server.max.queue.size", i),
			Metric: "memory_consumption",
			Goal:   float64(rpcMemoryGoal),
			Hard:   true,
			Min:    0, Max: 5000,
		}, profile, nil)
		if err != nil {
			panic(err)
		}
		sv, heap := servers[i], heaps[i]
		sv.BeforeAdmit = func() {
			ic.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
			sv.SetMaxQueue(ic.Conf())
		}
		noiseSeed := int64(100 + i) // per-node scenario seed, offset by node index
		heapNoise(s, heap, rand.New(rand.NewSource(noiseSeed)), rpcNoiseMax, 400*time.Second)
	}

	// Skewed dispatch: node 0 receives ~half the traffic, the rest split the
	// remainder — a common hot-shard pattern.
	pick := func() int {
		if rng.Float64() < 0.5 || nodes == 1 {
			return 0
		}
		return 1 + rng.Intn(nodes-1)
	}
	w := &rpcWorkload{
		gen: workload.NewYCSB(4445, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
		// Aggregate offered load scales with the cluster.
		burstSize:  hb3813BurstSize * nodes / 2,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 * mb}},
	}
	w.run(s, 400*time.Second, rng, func(op workload.Op) { servers[pick()].Offer(op) })
	s.RunUntil(400 * time.Second)

	var completed int64
	for i, sv := range servers {
		completed += sv.Completed()
		res.PerNodeKnob = append(res.PerNodeKnob, sv.MaxQueue())
		if heaps[i].OOM() {
			res.ConstraintMet = false
			res.Violations = append(res.Violations, fmt.Sprintf("node %d OOM", i))
		}
	}
	res.Throughput = float64(completed) / 400
	return res
}

// RenderDistributed formats the multi-node run.
func RenderDistributed(r DistributedResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Extension: %d-node cluster, one controller per node, skewed load\n", r.Nodes)
	if r.ConstraintMet {
		fmt.Fprintf(&b, "  every node held its memory constraint; %.2f ops/s aggregate\n", r.Throughput)
	} else {
		fmt.Fprintf(&b, "  VIOLATIONS: %s\n", strings.Join(r.Violations, ", "))
	}
	fmt.Fprintf(&b, "  per-node queue bounds (hot node first): %v\n", r.PerNodeKnob)
	return b.String()
}
