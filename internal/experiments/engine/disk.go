package engine

import (
	"sync"
	"sync/atomic"

	"smartconf/internal/experiments/engine/diskcache"
)

// The disk layer sits beneath the in-memory single-flight cache: a Memo miss
// first consults the persistent cache, and only simulates when the disk
// misses too. Loads and stores happen inside the entry's once.Do, so each key
// touches the disk at most once per process no matter how many goroutines
// race on it.

var (
	stampMu   sync.RWMutex
	diskStamp string
	diskLoads atomic.Uint64
)

// EnableDiskCache turns on the persistent run cache rooted at dir, stamping
// every entry with the caller's scenario-code version (entries written under
// a different stamp are invisible). An empty dir disables the layer. Returns
// any directory-creation error, in which case the layer stays off.
func EnableDiskCache(dir, stamp string) error {
	stampMu.Lock()
	diskStamp = stamp
	stampMu.Unlock()
	return diskcache.Configure(dir)
}

// DiskCacheEnabled reports whether the persistent layer is active.
func DiskCacheEnabled() bool { return diskcache.Enabled() }

// diskKey widens an in-memory key with the configured version stamp.
func diskKey(k Key) diskcache.Key {
	stampMu.RLock()
	s := diskStamp
	stampMu.RUnlock()
	return diskcache.Key{
		Stamp:    s,
		Scenario: k.Scenario,
		Policy:   k.Policy,
		Seed:     k.Seed,
		Schedule: k.Schedule,
	}
}

// DiskLoads reports how many Memo computations were satisfied from the
// persistent layer (counted separately from Stats' executed and in-memory
// hits) since the last ResetCache.
func DiskLoads() uint64 { return diskLoads.Load() }

// DiskStats reports the persistent layer's cumulative load/store counters;
// see diskcache.Stats.
func DiskStats() (loadHits, loadMisses, writes, writeSkips uint64) {
	return diskcache.Stats()
}
