// Package engine is the parallel experiment run engine behind the harness.
//
// Every artifact the harness produces — Figure 5's static-grid sweeps, the
// MR2820 co-tenant seed race, the ablation grids, the robustness sweep, the
// LLM-KV extension — is a set of independent, deterministic discrete-event
// simulations. The engine fans those runs out across a bounded worker pool
// and reassembles the results in a deterministic order, so parallelism is a
// pure wall-clock win: because each simulation is a pure function of its
// inputs (fixed seeds, virtual time, no shared mutable state between runs),
// the rendered artifacts are byte-identical to a sequential execution at any
// worker count.
//
// The second half of the engine is a process-wide memoized run cache
// (memo.go): deterministic runs are keyed by (scenario, policy, seed,
// schedule) and never simulated twice, no matter how many artifacts ask for
// them.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers is the pool bound; inFlight counts jobs currently running on
// spawned goroutines (the calling goroutine is always an implicit worker on
// top of this, so the spawn budget is workers-1).
var (
	workers  atomic.Int64
	inFlight atomic.Int64
)

func init() {
	workers.Store(int64(runtime.GOMAXPROCS(0)))
}

// SetWorkers bounds how many runs may execute concurrently, process-wide.
// n ≤ 1 makes every Map strictly sequential on the calling goroutine.
// It returns the previous bound so callers (tests, the bench -parallel flag)
// can restore it.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	return int(workers.Swap(int64(n)))
}

// Workers reports the current pool bound.
func Workers() int { return int(workers.Load()) }

// tryAcquire claims one of the workers-1 spawn slots without blocking.
func tryAcquire() bool {
	limit := workers.Load() - 1
	for {
		cur := inFlight.Load()
		if cur >= limit {
			return false
		}
		if inFlight.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

func release() { inFlight.Add(-1) }

// Map runs fn(0) … fn(n-1) on the worker pool and returns the results in
// index order, regardless of completion order. When the pool is saturated a
// job runs inline on the calling goroutine instead of queueing, which keeps
// nested Map calls (a scenario fanning out its profiling sweep inside a
// Figure 5 fan-out) deadlock-free by construction. A panic in any job is
// re-raised on the calling goroutine, as it would be sequentially.
func Map[T any](n int, fn func(i int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	if n == 1 || Workers() <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		wg       sync.WaitGroup
		panicMu  sync.Mutex
		panicVal any
	)
	for i := 0; i < n; i++ {
		if tryAcquire() {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer release()
				defer func() {
					if r := recover(); r != nil {
						panicMu.Lock()
						if panicVal == nil {
							panicVal = r
						}
						panicMu.Unlock()
					}
				}()
				out[i] = fn(i)
			}(i)
		} else {
			out[i] = fn(i)
		}
	}
	wg.Wait()
	if panicVal != nil {
		panic(panicVal)
	}
	return out
}

// MapSlice is Map over the elements of a slice.
func MapSlice[In, Out any](in []In, fn func(In) Out) []Out {
	return Map(len(in), func(i int) Out { return fn(in[i]) })
}
