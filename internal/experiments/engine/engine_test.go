package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderPreserved(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	got := Map(100, func(i int) int {
		time.Sleep(time.Duration((100-i)%7) * time.Microsecond)
		return i * i
	})
	if len(got) != 100 {
		t.Fatalf("len = %d, want 100", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSequentialWhenOneWorker(t *testing.T) {
	prev := SetWorkers(1)
	defer SetWorkers(prev)
	var order []int
	Map(10, func(i int) int {
		order = append(order, i) // safe: must run on the calling goroutine only
		return i
	})
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential order violated: %v", order)
		}
	}
}

func TestMapNestedNoDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	done := make(chan []int, 1)
	go func() {
		done <- Map(8, func(i int) int {
			inner := Map(8, func(j int) int { return j })
			sum := 0
			for _, v := range inner {
				sum += v
			}
			return sum + i
		})
	}()
	select {
	case got := <-done:
		for i, v := range got {
			if v != 28+i {
				t.Fatalf("got[%d] = %d, want %d", i, v, 28+i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("nested Map deadlocked")
	}
}

func TestMapPanicPropagates(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("panic in job did not propagate")
		}
	}()
	Map(8, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		return i
	})
}

func TestMapSlice(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	got := MapSlice([]string{"a", "bb", "ccc"}, func(s string) int { return len(s) })
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	orig := Workers()
	prev := SetWorkers(0)
	if prev != orig {
		t.Fatalf("SetWorkers returned %d, want %d", prev, orig)
	}
	if Workers() != 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0), want 1 (clamped)", Workers())
	}
	SetWorkers(orig)
}

func TestMemoSingleFlight(t *testing.T) {
	ResetCache()
	defer ResetCache()
	prev := SetWorkers(8)
	defer SetWorkers(prev)

	var computions atomic.Int64
	k := Key{Scenario: "S", Policy: "P", Seed: 1}
	var wg sync.WaitGroup
	results := make([]int, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = Memo(k, func() int {
				computions.Add(1)
				time.Sleep(time.Millisecond)
				return 42
			})
		}(i)
	}
	wg.Wait()
	if n := computions.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for i, v := range results {
		if v != 42 {
			t.Fatalf("results[%d] = %d, want 42", i, v)
		}
	}
	exec, cacheHits := Stats()
	if exec != 1 {
		t.Fatalf("Stats executed = %d, want 1", exec)
	}
	if cacheHits != 31 {
		t.Fatalf("Stats hits = %d, want 31", cacheHits)
	}
	if CacheLen() != 1 {
		t.Fatalf("CacheLen = %d, want 1", CacheLen())
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	ResetCache()
	defer ResetCache()
	for i := 0; i < 5; i++ {
		k := Key{Scenario: "S", Policy: fmt.Sprintf("p%d", i), Seed: int64(i), Schedule: "sched"}
		got := Memo(k, func() int { return i * 10 })
		if got != i*10 {
			t.Fatalf("Memo(%v) = %d, want %d", k, got, i*10)
		}
	}
	if CacheLen() != 5 {
		t.Fatalf("CacheLen = %d, want 5", CacheLen())
	}
	exec, cacheHits := Stats()
	if exec != 5 || cacheHits != 0 {
		t.Fatalf("Stats = (%d, %d), want (5, 0)", exec, cacheHits)
	}
}

func TestMapUnderMemoRace(t *testing.T) {
	// Hammer Map + Memo together from many goroutines; run with -race.
	ResetCache()
	defer ResetCache()
	prev := SetWorkers(8)
	defer SetWorkers(prev)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			Map(16, func(i int) int {
				return Memo(Key{Scenario: "race", Seed: int64(i % 4)}, func() int {
					return i % 4
				})
			})
		}()
	}
	wg.Wait()
	if n := CacheLen(); n != 4 {
		t.Fatalf("CacheLen = %d, want 4", n)
	}
}
