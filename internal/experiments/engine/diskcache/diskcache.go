// Package diskcache persists memoized simulation results across processes.
//
// It is the disk layer beneath the engine's in-memory single-flight cache: a
// content-addressed directory of JSON envelopes, one file per run key, so a
// warm rebuild of every figure and ablation executes zero simulations even in
// a fresh process. The package is a leaf — it knows nothing about scenarios
// or results, only about encoding a (key, value) pair deterministically — so
// the engine can import it without a cycle.
//
// Correctness over reuse: any defect in a cache file (truncation, a stale
// format, a version stamp from older scenario code, a key that does not match
// its filename) turns into a miss, never an error. The caller recomputes and
// overwrites. Files are written via temp-file + rename, so concurrent
// processes sharing a directory can only ever observe complete envelopes.
//
// Determinism: envelopes are encoded with encoding/json over fixed-order
// structs — never encoding/gob, whose map encoding is randomized — so the
// bytes for a given (stamp, key, value) are identical across processes and
// worker counts, and cache directories can be diffed or content-addressed.
package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
)

// formatVersion is bumped whenever the envelope layout changes; files with
// any other format are misses.
const formatVersion = "smartconf-runcache/1"

// Key identifies one deterministic run, mirroring engine.Key. The Stamp is
// the caller's scenario-code version: results computed by different scenario
// code must never satisfy each other, so the stamp participates in both the
// filename hash and the load-time match.
type Key struct {
	Stamp    string `json:"stamp"`
	Scenario string `json:"scenario"`
	Policy   string `json:"policy"`
	Seed     int64  `json:"seed"`
	Schedule string `json:"schedule"`
}

// envelope is the on-disk file layout. Field order is fixed by the struct
// declaration, which is what makes the encoded bytes deterministic.
type envelope struct {
	Format string          `json:"format"`
	Key    Key             `json:"key"`
	Value  json.RawMessage `json:"value"`
}

var (
	mu  sync.RWMutex
	dir string // empty = disabled

	hits      atomic.Uint64
	misses    atomic.Uint64
	stores    atomic.Uint64
	storeSkip atomic.Uint64
)

// Configure enables the cache rooted at d (creating it if needed) or
// disables it when d is empty. Returns any directory-creation error; the
// cache stays disabled on failure.
func Configure(d string) error {
	mu.Lock()
	defer mu.Unlock()
	if d == "" {
		dir = ""
		return nil
	}
	if err := os.MkdirAll(d, 0o755); err != nil {
		dir = ""
		return err
	}
	dir = d
	return nil
}

// Enabled reports whether a cache directory is configured.
func Enabled() bool {
	mu.RLock()
	defer mu.RUnlock()
	return dir != ""
}

// path maps a key to its cache file: the sha256 of the key's canonical JSON,
// hex-encoded. Content addressing makes collisions between distinct keys
// cryptographically negligible, and the load-time key match catches even
// those (plus hand-renamed files).
func path(root string, k Key) string {
	b, err := json.Marshal(k)
	if err != nil {
		return ""
	}
	sum := sha256.Sum256(b)
	return filepath.Join(root, hex.EncodeToString(sum[:])+".json")
}

// Load retrieves the value cached for k. ok is false on any failure — a
// missing file, unreadable bytes, a format or stamp or key mismatch, or a
// value that does not decode into T — and the caller recomputes.
func Load[T any](k Key) (v T, ok bool) {
	mu.RLock()
	root := dir
	mu.RUnlock()
	if root == "" {
		return v, false
	}
	p := path(root, k)
	if p == "" {
		misses.Add(1)
		return v, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		misses.Add(1)
		return v, false
	}
	var env envelope
	if json.Unmarshal(b, &env) != nil || env.Format != formatVersion || env.Key != k {
		misses.Add(1)
		return v, false
	}
	if json.Unmarshal(env.Value, &v) != nil {
		misses.Add(1)
		var zero T
		return zero, false
	}
	hits.Add(1)
	return v, true
}

// Store writes the value computed for k. Best-effort: encoding or I/O
// failures are silent (the run succeeded; only its reuse is lost) but
// counted in Stats. Values that do not survive a JSON round trip exactly
// (NaN fields, unexported state, non-string map keys) are skipped rather
// than cached lossily — a cache that returns almost the computed result
// would break byte-identical artifact rebuilds.
func Store[T any](k Key, v T) {
	mu.RLock()
	root := dir
	mu.RUnlock()
	if root == "" {
		return
	}
	raw, err := json.Marshal(v)
	if err != nil {
		storeSkip.Add(1)
		return
	}
	var back T
	if json.Unmarshal(raw, &back) != nil || !reflect.DeepEqual(back, v) {
		storeSkip.Add(1)
		return
	}
	env := envelope{Format: formatVersion, Key: k, Value: raw}
	b, err := json.Marshal(env)
	if err != nil {
		storeSkip.Add(1)
		return
	}
	p := path(root, k)
	if p == "" {
		storeSkip.Add(1)
		return
	}
	tmp, err := os.CreateTemp(root, "store-*.tmp")
	if err != nil {
		storeSkip.Add(1)
		return
	}
	_, werr := tmp.Write(b)
	cerr := tmp.Close()
	if werr != nil || cerr != nil || os.Rename(tmp.Name(), p) != nil {
		os.Remove(tmp.Name())
		storeSkip.Add(1)
		return
	}
	stores.Add(1)
}

// Stats reports cumulative counters since process start (or ResetStats):
// successful loads, load failures of any kind, completed writes, and writes
// skipped or failed.
func Stats() (loadHits, loadMisses, writes, writeSkips uint64) {
	return hits.Load(), misses.Load(), stores.Load(), storeSkip.Load()
}

// ResetStats zeroes the counters (tests).
func ResetStats() {
	hits.Store(0)
	misses.Store(0)
	stores.Store(0)
	storeSkip.Store(0)
}
