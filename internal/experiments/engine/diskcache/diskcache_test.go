package diskcache

import (
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"
)

type fakeResult struct {
	Name    string
	P95     time.Duration
	Scores  []float64
	Nested  map[string]int
	Reached bool
}

func sample() fakeResult {
	return fakeResult{
		Name:    "hb3813",
		P95:     137 * time.Millisecond,
		Scores:  []float64{0.25, 1e-9, 3},
		Nested:  map[string]int{"violations": 2, "periods": 600},
		Reached: true,
	}
}

func key() Key {
	return Key{Stamp: "v1", Scenario: "HB3813", Policy: "smartconf", Seed: 42, Schedule: "fig5"}
}

// configure points the cache at a fresh per-test directory and restores the
// disabled state afterwards.
func configure(t *testing.T) string {
	t.Helper()
	d := t.TempDir()
	if err := Configure(d); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { Configure("") })
	ResetStats()
	return d
}

func TestDisabledByDefault(t *testing.T) {
	Configure("")
	if Enabled() {
		t.Fatal("cache enabled with empty dir")
	}
	Store(key(), sample())
	if _, ok := Load[fakeResult](key()); ok {
		t.Error("disabled cache served a value")
	}
}

func TestRoundTrip(t *testing.T) {
	configure(t)
	want := sample()
	Store(key(), want)
	got, ok := Load[fakeResult](key())
	if !ok {
		t.Fatal("stored value not loadable")
	}
	if got.Name != want.Name || got.P95 != want.P95 || !got.Reached ||
		len(got.Scores) != 3 || got.Scores[1] != 1e-9 || got.Nested["periods"] != 600 {
		t.Errorf("round trip mangled the value: %+v", got)
	}
	if h, m, w, s := Stats(); h != 1 || m != 0 || w != 1 || s != 0 {
		t.Errorf("stats = (%d,%d,%d,%d), want (1,0,1,0)", h, m, w, s)
	}
}

func TestMissOnAbsent(t *testing.T) {
	configure(t)
	if _, ok := Load[fakeResult](key()); ok {
		t.Error("empty cache reported a hit")
	}
	if _, m, _, _ := Stats(); m != 1 {
		t.Errorf("misses = %d, want 1", m)
	}
}

// A different stamp means different scenario code: its results must be
// invisible, not almost-right.
func TestStampMismatchIsMiss(t *testing.T) {
	configure(t)
	Store(key(), sample())
	k2 := key()
	k2.Stamp = "v2"
	if _, ok := Load[fakeResult](k2); ok {
		t.Error("stale stamp served a cached value")
	}
}

func TestKeySeparation(t *testing.T) {
	configure(t)
	k := key()
	Store(k, sample())
	for _, mut := range []func(*Key){
		func(k *Key) { k.Scenario = "MR2820" },
		func(k *Key) { k.Policy = "static" },
		func(k *Key) { k.Seed = 43 },
		func(k *Key) { k.Schedule = "fig7" },
	} {
		k2 := key()
		mut(&k2)
		if _, ok := Load[fakeResult](k2); ok {
			t.Errorf("key %+v aliased %+v", k2, k)
		}
	}
}

// Every flavor of on-disk damage degrades to a miss, never an error or a
// wrong value.
func TestCorruptionIsMiss(t *testing.T) {
	d := configure(t)
	Store(key(), sample())
	files, err := filepath.Glob(filepath.Join(d, "*.json"))
	if err != nil || len(files) != 1 {
		t.Fatalf("cache files = %v (err %v), want exactly one", files, err)
	}
	f := files[0]
	orig, _ := os.ReadFile(f)

	for name, bytes := range map[string][]byte{
		"truncated":    orig[:len(orig)/2],
		"empty":        {},
		"not-json":     []byte("#!garbage"),
		"wrong-format": []byte(`{"format":"smartconf-runcache/0","key":{},"value":{}}`),
	} {
		if err := os.WriteFile(f, bytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := Load[fakeResult](key()); ok {
			t.Errorf("%s file served a value", name)
		}
	}

	// A valid envelope renamed onto the wrong key (or a hash collision)
	// fails the embedded-key match.
	if err := os.WriteFile(f, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	k2 := key()
	k2.Seed = 99
	if err := os.Rename(f, path(d, k2)); err != nil {
		t.Fatal(err)
	}
	if _, ok := Load[fakeResult](k2); ok {
		t.Error("renamed envelope served a value for the wrong key")
	}
}

// Values that cannot survive a JSON round trip exactly must be skipped, not
// cached lossily.
func TestNonFaithfulValueSkipped(t *testing.T) {
	d := configure(t)
	type withNaN struct{ X float64 }
	Store(Key{Stamp: "v1", Scenario: "nan"}, withNaN{X: math.NaN()})
	if files, _ := filepath.Glob(filepath.Join(d, "*")); len(files) != 0 {
		t.Errorf("NaN value was written: %v", files)
	}
	if _, _, w, s := Stats(); w != 0 || s != 1 {
		t.Errorf("writes=%d skips=%d, want 0,1", w, s)
	}
}

// The same (key, value) always produces the same file bytes — the property
// that makes warm rebuilds byte-identical and cache dirs diffable.
func TestDeterministicBytes(t *testing.T) {
	d1 := t.TempDir()
	d2 := t.TempDir()
	defer Configure("")
	for _, d := range []string{d1, d2} {
		if err := Configure(d); err != nil {
			t.Fatal(err)
		}
		Store(key(), sample())
	}
	b1, err1 := os.ReadFile(path(d1, key()))
	b2, err2 := os.ReadFile(path(d2, key()))
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if string(b1) != string(b2) {
		t.Errorf("encodings differ:\n%s\n%s", b1, b2)
	}
}

func TestStoreOverwrites(t *testing.T) {
	configure(t)
	v := sample()
	Store(key(), v)
	v.P95 = 999 * time.Millisecond
	Store(key(), v)
	got, ok := Load[fakeResult](key())
	if !ok || got.P95 != 999*time.Millisecond {
		t.Errorf("overwrite not visible: ok=%v P95=%v", ok, got.P95)
	}
}
