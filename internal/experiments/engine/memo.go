package engine

import (
	"sync"
	"sync/atomic"

	"smartconf/internal/experiments/engine/diskcache"
)

// Key identifies one deterministic simulation run. Two runs with equal keys
// must be guaranteed (by the caller) to produce identical results; the cache
// then ensures the simulation is executed at most once per process.
//
// Policy must encode everything that varies with the control policy —
// including fields that Policy.String() elides, such as a pinned pole.
// Schedule disambiguates workload variants that reuse a scenario ID with a
// different phase plan or goal schedule (e.g. Figure 7's phased HB3813 run
// versus the Figure 5 row).
type Key struct {
	Scenario string
	Policy   string
	Seed     int64
	Schedule string
}

type memoEntry struct {
	once sync.Once
	val  any
}

var (
	memoMu   sync.Mutex
	memoMap  = map[Key]*memoEntry{}
	executed atomic.Uint64
	hits     atomic.Uint64
)

// Memo returns the cached result for k, computing it at most once
// process-wide. Concurrent calls for the same key block on a single
// in-flight computation rather than duplicating work (single-flight).
//
// When the persistent layer is on (EnableDiskCache), a first-in-process key
// consults the disk before simulating and writes its computed result back,
// so a warm rebuild in a fresh process executes nothing. Disk-satisfied
// entries count in DiskLoads, not in Stats' executed — the executed counter
// remains "simulations actually run in this process".
func Memo[T any](k Key, compute func() T) T {
	memoMu.Lock()
	e, ok := memoMap[k]
	if !ok {
		e = &memoEntry{}
		memoMap[k] = e
	}
	memoMu.Unlock()
	first := false
	e.once.Do(func() {
		first = true
		if diskcache.Enabled() {
			dk := diskKey(k)
			if v, ok := diskcache.Load[T](dk); ok {
				diskLoads.Add(1)
				e.val = v
				return
			}
			executed.Add(1)
			v := compute()
			e.val = v
			diskcache.Store(dk, v)
			return
		}
		executed.Add(1)
		e.val = compute()
	})
	if !first {
		hits.Add(1)
	}
	return e.val.(T)
}

// ResetCache drops every memoized run and zeroes the counters. Tests and the
// golden byte-identity check use it to force fresh simulations.
func ResetCache() {
	memoMu.Lock()
	memoMap = map[Key]*memoEntry{}
	memoMu.Unlock()
	executed.Store(0)
	hits.Store(0)
	diskLoads.Store(0)
}

// Stats reports how many computations actually executed versus how many
// calls were served from the cache since the last ResetCache.
func Stats() (exec, cacheHits uint64) {
	return executed.Load(), hits.Load()
}

// CacheLen reports the number of distinct keys memoized.
func CacheLen() int {
	memoMu.Lock()
	defer memoMu.Unlock()
	return len(memoMap)
}
