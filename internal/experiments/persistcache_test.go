package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"smartconf/internal/experiments/engine"
)

// The headline property of the persistent layer: after one cold build, a
// fresh process (emulated by dropping the in-memory layer) rebuilds the full
// figure from disk alone — zero simulations — and renders byte-identically,
// at any worker count.
func TestPersistentRunCacheWarmRebuild(t *testing.T) {
	ResetRunCache()
	defer func() {
		EnablePersistentRunCache("")
		ResetRunCache()
	}()
	if err := EnablePersistentRunCache(t.TempDir()); err != nil {
		t.Fatal(err)
	}

	cold := RenderFigure5(BuildFigure5())
	execCold, _ := RunCacheStats()
	if execCold == 0 {
		t.Fatal("cold build executed no simulations")
	}
	_, written := PersistentRunCacheStats()
	if written == 0 {
		t.Fatal("cold build persisted nothing")
	}

	ResetRunCache() // drop the in-memory layer: the disk is all that remains
	warm := RenderFigure5(BuildFigure5())
	if exec, _ := RunCacheStats(); exec != 0 {
		t.Errorf("warm rebuild executed %d simulations, want 0", exec)
	}
	if loaded, _ := PersistentRunCacheStats(); loaded == 0 {
		t.Error("warm rebuild loaded nothing from disk")
	}
	if warm != cold {
		t.Errorf("warm rendering differs from cold:\n--- cold ---\n%s\n--- warm ---\n%s", cold, warm)
	}

	// Same again with the worker pool fanned out: placement of disk loads
	// across goroutines must not leak into the artifact.
	prev := engine.SetWorkers(8)
	defer engine.SetWorkers(prev)
	ResetRunCache()
	warm8 := RenderFigure5(BuildFigure5())
	if exec, _ := RunCacheStats(); exec != 0 {
		t.Errorf("warm 8-worker rebuild executed %d simulations, want 0", exec)
	}
	if warm8 != cold {
		t.Error("8-worker warm rendering differs from sequential cold rendering")
	}
}

// Damaged or stale cache files fall back to recomputation and still produce
// the identical artifact — the cache can make a build faster, never wrong.
func TestPersistentRunCacheCorruptionFallsBack(t *testing.T) {
	dir := t.TempDir()
	ResetRunCache()
	defer func() {
		EnablePersistentRunCache("")
		ResetRunCache()
	}()
	if err := EnablePersistentRunCache(dir); err != nil {
		t.Fatal(err)
	}

	cold := RenderFigure5(BuildFigure5())
	files, err := filepath.Glob(filepath.Join(dir, "*.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no cache files written (err %v)", err)
	}
	for _, f := range files {
		if err := os.WriteFile(f, []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	ResetRunCache()
	execBefore, _ := RunCacheStats()
	rebuilt := RenderFigure5(BuildFigure5())
	if exec, _ := RunCacheStats(); exec == execBefore {
		t.Error("corrupted cache served results instead of recomputing")
	}
	if rebuilt != cold {
		t.Error("rebuild after corruption differs from the original artifact")
	}
}
