package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/core"
	"smartconf/internal/kvstore"
	"smartconf/internal/memsim"
	"smartconf/internal/workload"
)

// HB2149: global.memstore.lowerLimit decides how much memstore data each
// blocking flush drains (expressed here as the flushed fraction of the upper
// watermark). Flushing a lot blocks writers for a long time — the user's
// worst-case block-time constraint; flushing a little pays the per-flush
// fixed cost constantly, hurting write throughput.
//
// This is the paper's goal-change scenario: mid-run the user tightens the
// block-time goal from 10 s to 5 s (Table 6's "1.0W, 1MB, 10s" → "…, 5s").
//
// Paper flags: Y-Y-N (conditional, direct, soft).

const (
	hb2149RunTime    = 700 * time.Second
	hb2149PhaseShift = 350 * time.Second
	hb2149Goal1      = 10.0 // seconds of worst-case write block
	hb2149Goal2      = 5.0
	hb2149Grace      = 60 * time.Second // one flush cycle to converge after setGoal
	hb2149WriteEvery = 100 * time.Millisecond
)

func hb2149Config() kvstore.MemstoreConfig {
	return kvstore.MemstoreConfig{
		UpperLimitBytes:    256 * mb,
		FlushBytesPerSec:   64 * mb,
		FlushFixedOverhead: 4 * time.Second,
		WriteBaseLatency:   2 * time.Millisecond,
		BaseHeapBytes:      64 * mb,
	}
}

// hb2149Block predicts the block time for a flush fraction under the
// configured store (for grid/default documentation; the controller learns
// this from profiling, not from this formula).
func hb2149Block(fraction float64) float64 {
	cfg := hb2149Config()
	return cfg.FlushFixedOverhead.Seconds() + fraction*float64(cfg.UpperLimitBytes)/float64(cfg.FlushBytesPerSec)
}

// ProfileHB2149 profiles block duration against the pinned flush fraction
// under the profiling workload (YCSB 1.0W, 1 MB).
func ProfileHB2149() core.Profile {
	return memoProfile("HB2149", func() core.Profile {
		return profileSweep([]float64{0.2, 0.4, 0.6, 0.8}, func(setting float64, record func(setting, measurement float64)) {
			s := newScenarioSim()
			heap := memsim.NewHeap(2 << 30)
			st := kvstore.NewMemstore(s, heap, hb2149Config(), setting)
			taken := 0
			gen := workload.NewYCSB(2149, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb})
			s.Every(0, hb2149WriteEvery, func() bool {
				st.Write(gen.NextOp().Bytes)
				// One measurement per completed flush, up to 10.
				if n := st.BlockTimes().Count(); int(n) > taken && taken < 10 {
					record(setting, st.BlockTimes().Last().Seconds())
					taken = int(n)
				}
				return taken < 10 && !st.Crashed()
			})
			s.Run()
		})
	})
}

// hb2149Sensor builds the per-flush hook: read the last completed flush's
// block time, feed the controller, apply the new fraction. The first flush
// has no completed measurement yet (Count() == 0), so the hook holds the
// Initial fraction instead of acting on a phantom 0 s sample that would
// read "goal comfortably met" and push the knob off fabricated data.
func hb2149Sensor(st *kvstore.Memstore, sc *smartconf.Conf) func() {
	return func() {
		if st.BlockTimes().Count() == 0 {
			return
		}
		last := st.BlockTimes().Last().Seconds() //sc:HB2149:sensor
		sc.SetPerf(last)                         //sc:HB2149:invoke
		st.SetFlushFraction(sc.Value())          //sc:HB2149:invoke
	}
}

// RunHB2149 executes the two-phase evaluation under the given policy.
func RunHB2149(p Policy) Result {
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(2149))
	heap := memsim.NewHeap(2 << 30)
	st := kvstore.NewMemstore(s, heap, hb2149Config(), 0.5)

	var setGoal func(float64)
	switch p.Kind {
	case StaticPolicy:
		st.SetFlushFraction(p.Static)
	case SmartConfPolicy:
		profile := ProfileHB2149()
		sc, err := smartconf.New(smartconf.Spec{
			Name:    "global.memstore.lowerLimit",
			Metric:  "write_block_time",
			Goal:    hb2149Goal1,
			Hard:    false, // soft constraint: SLA-style, occasional excursions tolerated
			Initial: 0.5,
			Min:     0.01, Max: 1,
		}, publicProfile(profile))
		if err != nil {
			panic(fmt.Sprintf("HB2149 synthesis: %v", err))
		}
		// Conditional configuration: the controller runs only when a flush
		// actually triggers (§4.2 — the natural call sites ARE the
		// condition).
		st.BeforeFlush = hb2149Sensor(st, sc)
		setGoal = sc.SetGoal
	case SinglePolePolicy, NoVirtualGoalPolicy:
		// The Figure 7 ablations target hard memory goals; for this soft
		// scenario they behave like SmartConf and are not studied.
		return runCached(HB2149Scenario(), SmartConf())
	}

	blockS := Series{Name: "block_time", Unit: "s"}
	knobS := Series{Name: "flush_fraction", Unit: "fraction"}
	tputS := Series{Name: "write_throughput", Unit: "ops/s"}
	seen := int64(0)
	s.Every(time.Second, time.Second, func() bool {
		if n := st.BlockTimes().Count(); n > seen {
			blockS.Points = append(blockS.Points, Point{s.Now(), st.BlockTimes().Last().Seconds()})
			seen = n
		}
		knobS.Points = append(knobS.Points, Point{s.Now(), st.FlushFraction()})
		tputS.Points = append(tputS.Points, Point{s.Now(), st.Throughput()})
		return s.Now() < hb2149RunTime
	})

	s.At(hb2149PhaseShift, func() {
		if setGoal != nil {
			setGoal(hb2149Goal2)
		}
	})

	gen := workload.NewYCSB(2150, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb})
	_ = rng
	s.Every(0, hb2149WriteEvery, func() bool {
		st.Write(gen.NextOp().Bytes)
		return s.Now() < hb2149RunTime && !st.Crashed()
	})
	s.RunUntil(hb2149RunTime)

	res := Result{
		Issue:          "HB2149",
		Policy:         p,
		TradeoffName:   "write throughput (ops/s)",
		HigherIsBetter: true,
		Tradeoff:       float64(st.Writes()) / hb2149RunTime.Seconds(),
		Series:         []Series{blockS, knobS, tputS},
	}
	goalAt := func(t time.Duration) float64 {
		if t < hb2149PhaseShift+hb2149Grace {
			return hb2149Goal1
		}
		return hb2149Goal2
	}
	// Soft constraint tolerance: block-time goals are SLA-like; allow 5%
	// measurement slack (the paper's soft goals are not overshoot-free).
	met, at, worst := evalUpperBound(blockS, func(t time.Duration) float64 { return goalAt(t) * 1.05 })
	if !met {
		res.ConstraintMet = false
		res.ViolatedAt = at
		res.Violation = fmt.Sprintf("block %.1fs > goal %.1fs", worst, goalAt(at))
	} else {
		res.ConstraintMet = true
	}
	return res
}

// HB2149Scenario returns the scenario descriptor.
func HB2149Scenario() Scenario {
	return Scenario{
		ID:                "HB2149",
		Conf:              "global.memstore.lowerLimit",
		Description:       "decides how much memstore data is flushed; too big, write blocked too long; too small, write blocked too often",
		Flags:             "Y-Y-N",
		ConstraintName:    "worst write block ≤ 10s → 5s (soft)",
		TradeoffName:      "write throughput (ops/s)",
		HigherIsBetter:    true,
		ProfilingWorkload: "YCSB 1.0W, 1MB @ fraction 0.2/0.4/0.6/0.8",
		PhaseWorkloads:    [2]string{"YCSB 1.0W, 1MB, block ≤ 10s", "YCSB 1.0W, 1MB, block ≤ 5s"},
		BuggyDefault:      0.95, // drain almost everything: ~7.8s blocks — breaks the 5s goal
		PatchDefault:      0.2,  // conservative patched default: safe but flush-happy
		StaticGrid:        []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.35, 0.5, 0.65, 0.8, 0.95},
		NonOptimal:        0.05,
		Run:               RunHB2149,
	}
}
