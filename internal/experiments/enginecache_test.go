package experiments

import (
	"testing"

	"smartconf/internal/experiments/engine"
)

// The run cache must make every figure and ablation free after its first
// build: repeating a campaign may not execute a single new simulation.
func TestRunCacheDeduplicatesAcrossFigures(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	BuildFigure5()
	exec1, _ := RunCacheStats()
	if exec1 == 0 {
		t.Fatal("BuildFigure5 executed no simulations")
	}

	// Rebuilding the figure re-runs nothing.
	BuildFigure5()
	if exec2, _ := RunCacheStats(); exec2 != exec1 {
		t.Errorf("second BuildFigure5 executed %d new simulations", exec2-exec1)
	}

	// Figure 6 is the HB3813 row plus profile reuse — all cached already.
	BuildFigure6()
	if exec3, _ := RunCacheStats(); exec3 != exec1 {
		t.Errorf("BuildFigure6 executed %d new simulations after BuildFigure5", exec3-exec1)
	}

	// The pole and margin ablations introduce their own runs on the first
	// pass (sharing the automatically derived (pole, λ) point)...
	AblationPoles()
	AblationVirtualGoalMargin()
	exec4, _ := RunCacheStats()
	if exec4 == exec1 {
		t.Error("ablations executed no new simulations on their first pass")
	}
	// ...and nothing on the second.
	AblationPoles()
	AblationVirtualGoalMargin()
	if exec5, _ := RunCacheStats(); exec5 != exec4 {
		t.Errorf("repeated ablations executed %d new simulations", exec5-exec4)
	}

	// Every execution owns exactly one cache entry.
	if exec, _ := RunCacheStats(); int(exec) != engine.CacheLen() {
		t.Errorf("executed %d simulations but cache holds %d entries", exec, engine.CacheLen())
	}
}

// The cache key must separate runs that share a policy label: Figure 7's
// pinned-pole SmartConf run may not alias Figure 5's auto-pole run, and the
// per-seed MR2820 runs may not alias each other.
func TestRunCacheKeySeparation(t *testing.T) {
	ResetRunCache()
	defer ResetRunCache()

	BuildFigure5Row(HB3813Scenario())
	exec1, _ := RunCacheStats()
	f7 := BuildFigure7()
	exec2, _ := RunCacheStats()
	if exec2 == exec1 {
		t.Error("Figure 7 runs aliased the Figure 5 runs despite different workloads")
	}
	if f7.SmartConf.Tradeoff == f7.SinglePole.Tradeoff && f7.SmartConf.ConstraintMet == f7.SinglePole.ConstraintMet {
		t.Error("Figure 7 policies returned identical results — key aliasing suspected")
	}
}

// Fanning a figure out across many workers must produce byte-identical
// renderings to the sequential build. Forcing 8 workers on any host also
// makes this the package's concurrency test under -race.
func TestParallelFigure5Deterministic(t *testing.T) {
	prev := engine.SetWorkers(1)
	defer engine.SetWorkers(prev)

	ResetRunCache()
	seq := RenderFigure5(BuildFigure5())

	engine.SetWorkers(8)
	ResetRunCache()
	par := RenderFigure5(BuildFigure5())
	ResetRunCache()

	if seq != par {
		t.Errorf("parallel Figure 5 differs from sequential:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s", seq, par)
	}
}

// The profiling sweep's fan-out must merge per-setting samples into the same
// Profile the sequential campaign produced.
func TestParallelProfileDeterministic(t *testing.T) {
	prev := engine.SetWorkers(1)
	defer engine.SetWorkers(prev)

	ResetRunCache()
	seq := ProfileHB3813()

	engine.SetWorkers(8)
	ResetRunCache()
	par := ProfileHB3813()
	ResetRunCache()

	if len(seq.Settings) != len(par.Settings) {
		t.Fatalf("setting count differs: %d vs %d", len(seq.Settings), len(par.Settings))
	}
	for i := range seq.Settings {
		if seq.Settings[i].Setting != par.Settings[i].Setting {
			t.Fatalf("setting %d differs: %v vs %v", i, seq.Settings[i].Setting, par.Settings[i].Setting)
		}
		if len(seq.Settings[i].Samples) != len(par.Settings[i].Samples) {
			t.Fatalf("sample count at setting %v differs", seq.Settings[i].Setting)
		}
		for j, v := range seq.Settings[i].Samples {
			if par.Settings[i].Samples[j] != v {
				t.Fatalf("sample [%d][%d] differs: %v vs %v", i, j, v, par.Settings[i].Samples[j])
			}
		}
	}
}
