package experiments

import (
	"testing"
	"time"
)

func TestHB6728ProfileShape(t *testing.T) {
	p := ProfileHB6728()
	if len(p.Settings) != 4 || p.TotalSamples() != 40 {
		t.Fatalf("profile: %d settings, %d samples", len(p.Settings), p.TotalSamples())
	}
	m, err := p.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if m.Alpha <= 0 {
		t.Errorf("α = %v, want positive (more response bytes → more heap)", m.Alpha)
	}
	t.Logf("model %v, λ=%.3f pole=%.3f", m, p.Lambda(), core_PoleForTest(p))
}

func TestHB6728DefaultsOOM(t *testing.T) {
	sc := HB6728Scenario()
	buggy := RunHB6728(Static(sc.BuggyDefault))
	if buggy.ConstraintMet || buggy.Violation != "OOM" {
		t.Errorf("unbounded default should OOM: %+v", buggy.Violation)
	}
	patch := RunHB6728(Static(sc.PatchDefault))
	if patch.ConstraintMet {
		t.Logf("patched 1GB default fails at %v (%s)", patch.ViolatedAt, patch.Violation)
	} else if patch.Violation != "OOM" {
		t.Errorf("patched default expected OOM, got %q", patch.Violation)
	}
	if patch.ConstraintMet {
		t.Error("patched 1GB default should still OOM (bound above the heap)")
	}
}

func TestHB6728SmartConfMeetsConstraintAndBeatsStatic(t *testing.T) {
	sc := RunHB6728(SmartConf())
	if !sc.ConstraintMet {
		t.Fatalf("SmartConf violated at %v (%s)", sc.ViolatedAt, sc.Violation)
	}
	var best Result
	for _, v := range HB6728Scenario().StaticGrid {
		r := RunHB6728(Static(v))
		t.Logf("static %.0fMB: met=%v tput=%.2f", v/(1<<20), r.ConstraintMet, r.Tradeoff)
		if r.ConstraintMet && (best.Policy.Kind != StaticPolicy || r.Tradeoff > best.Tradeoff) {
			best = r
		}
	}
	if best.Policy.Kind != StaticPolicy {
		t.Fatal("no static setting satisfied the constraint")
	}
	speedup := sc.Speedup(best)
	t.Logf("SmartConf %.2f vs best static %v %.2f → %.2f×", sc.Tradeoff, best.Policy, best.Tradeoff, speedup)
	if speedup < 1.02 {
		t.Errorf("SmartConf speedup %.2f× too small", speedup)
	}
	_ = time.Second
}
