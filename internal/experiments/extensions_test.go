package experiments

import (
	"strings"
	"testing"
)

func TestSLAScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("extension scenario")
	}
	results := BuildSLAComparison()
	var smart SLAResult
	var bestStatic *SLAResult
	for i, r := range results {
		t.Logf("%v: p99=%.2fs met=%v tput=%.2f", r.Policy, r.P99, r.ConstraintMet, r.Throughput)
		if r.Policy.Kind == SmartConfPolicy {
			smart = r
		} else if r.ConstraintMet && (bestStatic == nil || r.Throughput > bestStatic.Throughput) {
			bestStatic = &results[i]
		}
	}
	if !smart.ConstraintMet {
		t.Errorf("SmartConf missed the SLA: p99 = %.2fs", smart.P99)
	}
	if bestStatic != nil && smart.Throughput < 0.95*bestStatic.Throughput {
		t.Errorf("SmartConf throughput %.2f well below best SLA-safe static %.2f",
			smart.Throughput, bestStatic.Throughput)
	}
	if out := RenderSLA(results); !strings.Contains(out, "SLA") {
		t.Error("render incomplete")
	}
}

func TestDistributedHB3813(t *testing.T) {
	if testing.Short() {
		t.Skip("extension scenario")
	}
	r := RunDistributedHB3813(4)
	if !r.ConstraintMet {
		t.Fatalf("violations: %v", r.Violations)
	}
	if len(r.PerNodeKnob) != 4 {
		t.Fatalf("knobs = %v", r.PerNodeKnob)
	}
	// The hot node (index 0, ~50% of traffic) must end with a working bound;
	// per-node controllers land on different values because load differs.
	same := true
	for _, k := range r.PerNodeKnob[1:] {
		if k != r.PerNodeKnob[0] {
			same = false
		}
	}
	if same {
		t.Errorf("all nodes landed on identical bounds %v — skew invisible?", r.PerNodeKnob)
	}
	t.Logf("per-node bounds: %v, aggregate %.2f ops/s", r.PerNodeKnob, r.Throughput)
	if out := RenderDistributed(r); !strings.Contains(out, "4-node") {
		t.Error("render incomplete")
	}
}
