package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Table 6: the benchmark suite — rendered from the live scenario
// descriptors so the table cannot drift from what the harness actually runs.

// RenderTable6 formats the suite like the paper's Table 6.
func RenderTable6() string {
	var b strings.Builder
	fmt.Fprintln(&b, "Table 6: benchmark suite and workloads (?-?-? = conditional-direct-hard)")
	fmt.Fprintln(&b)
	for _, sc := range Scenarios() {
		fmt.Fprintf(&b, "%s %s  %s\n", sc.ID, sc.Flags, sc.Conf)
		fmt.Fprintf(&b, "    %s\n", sc.Description)
		fmt.Fprintf(&b, "    constraint: %s;  trade-off: %s\n", sc.ConstraintName, sc.TradeoffName)
		fmt.Fprintf(&b, "    profiling:  %s\n", sc.ProfilingWorkload)
		fmt.Fprintf(&b, "    phase-1:    %s\n", sc.PhaseWorkloads[0])
		fmt.Fprintf(&b, "    phase-2:    %s\n", sc.PhaseWorkloads[1])
		fmt.Fprintln(&b)
	}
	return b.String()
}

// Table 7: lines of code changed to adopt SmartConf per issue. The paper
// counts the sensor code, the API-invocation code, and other refactoring.
// Here the equivalent integration lines in this repository are tagged with
// "//sc:<ISSUE>:<kind>" markers (kind ∈ sensor, invoke, other) and counted
// directly from the source, so the table tracks the real code.

// LoCRow is one issue's integration effort.
type LoCRow struct {
	Issue  string
	Sensor int
	Invoke int
	Other  int
}

// Total sums the row.
func (r LoCRow) Total() int { return r.Sensor + r.Invoke + r.Other }

// CountIntegrationLoC scans this package's sources for integration markers.
func CountIntegrationLoC() ([]LoCRow, error) {
	_, self, _, ok := runtime.Caller(0)
	if !ok {
		return nil, fmt.Errorf("experiments: cannot locate package sources")
	}
	dir := filepath.Dir(self)
	files, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	counts := map[string]*LoCRow{}
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		if err := scanMarkers(f, counts); err != nil {
			return nil, err
		}
	}
	rows := make([]LoCRow, 0, len(counts))
	for _, r := range counts {
		rows = append(rows, *r)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Issue < rows[j].Issue })
	return rows, nil
}

func scanMarkers(path string, counts map[string]*LoCRow) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		i := strings.Index(line, "//sc:")
		if i < 0 {
			continue
		}
		parts := strings.SplitN(strings.TrimSpace(line[i+len("//sc:"):]), ":", 2)
		if len(parts) != 2 {
			continue
		}
		issue, kind := parts[0], parts[1]
		if !validIssueID(issue) {
			continue // e.g. the marker grammar described in a doc comment
		}
		row, ok := counts[issue]
		if !ok {
			row = &LoCRow{Issue: issue}
			counts[issue] = row
		}
		switch kind {
		case "sensor":
			row.Sensor++
		case "invoke":
			row.Invoke++
		case "other":
			row.Other++
		}
	}
	return sc.Err()
}

// validIssueID accepts issue-id shapes: at least two uppercase letters
// followed by uppercase letters or digits (CA6059, HB3813, SLA, LLMKV, ...).
// Anything else — like the "<ISSUE>" placeholder in doc comments — is not a
// marker.
func validIssueID(s string) bool {
	if len(s) < 3 || s[0] < 'A' || s[0] > 'Z' || s[1] < 'A' || s[1] > 'Z' {
		return false
	}
	for _, c := range s[2:] {
		if (c < '0' || c > '9') && (c < 'A' || c > 'Z') {
			return false
		}
	}
	return true
}

// RenderTable7 formats the integration-effort table.
func RenderTable7() (string, error) {
	rows, err := CountIntegrationLoC()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintln(&b, "Table 7: integration lines to adopt SmartConf per issue")
	fmt.Fprintln(&b, "(counted from //sc:<issue>:<kind> markers on the live integration code;")
	fmt.Fprintln(&b, " the paper reports 8-76 lines per issue against the Java systems)")
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%-8s %8s %12s %8s %8s\n", "ID", "Sensor", "Invoke APIs", "Others", "Total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-8s %8d %12d %8d %8d\n", r.Issue, r.Sensor, r.Invoke, r.Other, r.Total())
	}
	return b.String(), nil
}
