package experiments

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"smartconf"
	"smartconf/internal/cluster"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// The heterogeneous fleet: same control plane as the uniform fleet scenario,
// but the members have DIFFERENT heap capacities — a mixed hardware
// generation, the common shape of a real fleet. A uniform per-node Spec.Max
// is wrong in both directions there: sized for the small box it strands the
// big box's capacity, sized for the big box it lets the fleet-wide goal
// drive a small box past its own heap. Instead each node's memory guard gets
// a capacity-derived Max, so the N+1 coordinated controllers share the
// fleet-wide budget while every node stays inside its own skin.

// fleetHeteroHeaps are the member heap capacities: two hardware generations
// below the uniform scenario's 768 MB boxes and one above.
var fleetHeteroHeaps = []int64{512 * mb, 640 * mb, 768 * mb, 1024 * mb}

// heteroNodeMaxQueue derives a node's queue-knob capacity from its heap: the
// deepest queue of 1 MB requests the heap can hold once base residency and
// the noise-walk headroom are spoken for. This is the per-node Spec.Max the
// fleet-wide goal cannot see — the shared budget never tells one member that
// its OWN heap is smaller than its peers'.
func heteroNodeMaxQueue(heapCapacity int64) float64 {
	return float64((heapCapacity - rpcBaseHeap - rpcNoiseMax) / mb)
}

// RunFleetHeteroScenario executes the SmartConf fleet over the heterogeneous
// member set: no chaos (the uniform scenario owns the loss story), skewed
// zipfian load, the same hard fleet-wide memory goal, per-node Spec.Max from
// heteroNodeMaxQueue. Uncached: BuildFleetHetero memoizes around it.
func RunFleetHeteroScenario() FleetResult {
	const (
		runTime   = 240 * time.Second
		loadUntil = 220 * time.Second
	)
	nodes := len(fleetHeteroHeaps)
	s := newScenarioSim()
	rng := rand.New(rand.NewSource(fleetSeed))

	heaps := make([]*memsim.Heap, nodes)
	servers := make([]*rpcserver.Server, nodes)
	fleet := cluster.NewFleet[workload.Op](cluster.KeyAffinity)
	for i := range servers {
		heaps[i] = memsim.NewHeap(fleetHeteroHeaps[i])
		servers[i] = rpcserver.New(s, heaps[i], rpcConfig())
		servers[i].SetID(i)
		servers[i].SetMaxQueue(0)
		sv := servers[i]
		sv.OnEvacuate = func(op workload.Op) {
			fleet.Redispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
		}
		fleet.Add(sv, 1, sv.Offer)
		heapNoise(s, heaps[i], rand.New(rand.NewSource(fleetSeed+100+int64(i))), rpcNoiseMax, runTime)
	}
	fleetMem := func() float64 {
		var total int64
		for _, h := range heaps {
			total += h.Used()
		}
		return float64(total)
	}

	res := FleetResult{Policy: SmartConf(), Nodes: nodes, FinalAdmission: -1}

	memProfile := publicProfile(ProfileFleetMemory())
	controls := make([]cluster.NodeControl, nodes)
	for i := range servers {
		sv := servers[i]
		memC, err := smartconf.NewIndirect(smartconf.Spec{
			Name:        fmt.Sprintf("node%d/ipc.server.max.queue.size#hetero-mem", i),
			Metric:      "fleet_memory_consumption",
			Goal:        float64(fleetMemGoal),
			Hard:        true,
			Interaction: nodes + 1,
			Min:         0, Max: heteroNodeMaxQueue(fleetHeteroHeaps[i]),
		}, memProfile, nil)
		if err != nil {
			panic(err)
		}
		controls[i] = cluster.NodeControl{
			Inst:   sv,
			Memory: memC,
			Deputy: func() float64 { return float64(sv.QueueLen()) },
			Apply:  func(bound int) { sv.SetMaxQueue(bound) },
		}
	}
	admission, err := smartconf.NewIndirect(smartconf.Spec{
		Name:        "fleet/max.in.flight#hetero",
		Metric:      "fleet_memory_consumption",
		Goal:        float64(fleetMemGoal),
		Hard:        true,
		Interaction: nodes + 1,
		Min:         0, Max: 20000,
	}, memProfile, nil)
	if err != nil {
		panic(err)
	}
	coord := cluster.NewCoordinator(fleet, fleetMem, admission, controls)
	fleet.BeforeDispatch = coord.StepMemory
	s.Every(time.Second, time.Second, func() bool {
		coord.StepMemory()
		return s.Now() < runTime
	})

	res.FleetMem = Series{Name: "fleet_memory", Unit: "bytes"}
	s.Every(time.Second, time.Second, func() bool {
		res.FleetMem.Points = append(res.FleetMem.Points, Point{s.Now(), fleetMem()})
		return s.Now() < runTime
	})

	w := &rpcWorkload{
		gen:        workload.NewYCSB(fleetSeed+1, 256, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb}),
		burstSize:  hb3813BurstSize * nodes,
		burstEvery: hb3813BurstEvery,
		spacing:    hb3813Spacing,
		phases:     []workload.YCSBPhase{{Name: "steady", WriteRatio: 1, RequestBytes: 1 * mb}},
	}
	w.run(s, loadUntil, rng, func(op workload.Op) {
		fleet.Dispatch(cluster.Request{Key: op.Key, Cost: float64(op.Bytes)}, op)
	})
	s.RunUntil(runTime)

	res.ConstraintMet = true
	if met, at, worst := evalUpperBound(res.FleetMem, func(time.Duration) float64 { return float64(fleetMemGoal) }); !met {
		res.ConstraintMet = false
		res.Violation = fmt.Sprintf("fleet memory %.0f MB > goal %d MB", worst/float64(mb), fleetMemGoal/mb)
		res.ViolatedAt = at
	}
	for i, h := range heaps {
		if h.OOM() {
			res.ConstraintMet = false
			if res.Violation == "" {
				res.Violation = fmt.Sprintf("node %d OOM", i)
			}
		}
	}
	res.WorstMem = res.FleetMem.Max()
	res.SoftGoalMet = true // no soft goal in this scenario

	var completed int64
	for _, sv := range servers {
		completed += sv.Completed()
		res.FinalBounds = append(res.FinalBounds, sv.MaxQueue())
	}
	res.Throughput = float64(completed) / runTime.Seconds()
	res.Refused = fleet.Refused()
	res.Throttled = fleet.Throttled()
	res.Redispatched = fleet.Redispatched()
	if a := coord.Admission(); a != math.MaxInt {
		res.FinalAdmission = a
	}
	return res
}

// BuildFleetHetero runs (or recalls) the heterogeneous fleet scenario.
func BuildFleetHetero() FleetResult {
	return memoKeyed("FLEET-HET", "smartconf", "fleet/hetero", fleetSeed,
		func() FleetResult { return RunFleetHeteroScenario() })
}
