package experiments

import (
	"fmt"

	"smartconf"
	"smartconf/internal/declog"
)

// The logged scale runner is how the whole-run benchgate proves the decision
// log is production-cheap: the raw-speed loop runs with a SHADOW controller
// attached — it senses the substrate, computes and clamps a decision, and
// records it into the ring every scaleLogEvery requests, but never actuates.
// The trajectory (and therefore the deterministic ScaleResult) is identical
// to the plain runner's, while the steady-state allocation window must stay
// at zero with logging enabled.

// scaleLogEvery is the shadow controller's sense cadence in requests: ~50
// logged decisions per 50k-request benchgate window — a busier control
// cadence than any real deployment period.
const scaleLogEvery = 1024

type loggedScaleRunner struct {
	inner ScaleRunner
	conf  *smartconf.Conf
	sense func() float64
}

// NewLoggedScaleRunner wraps the named substrate's scale runner with a
// shadow decision-logging controller recording into log.
func NewLoggedScaleRunner(substrate string, log *declog.Log) ScaleRunner {
	var inner ScaleRunner
	var sense func() float64
	switch substrate {
	case "rpc":
		r := newRPCScaleRunner()
		inner, sense = r, func() float64 { return float64(r.sv.QueueLen()) }
	case "llm":
		r := newLLMScaleRunner()
		inner, sense = r, func() float64 { return float64(r.sv.PromptTokens()) }
	case "kv":
		r := newKVScaleRunner()
		inner, sense = r, func() float64 { return float64(r.st.MemtableBytes()) }
	case "dfs":
		r := newDFSScaleRunner()
		inner, sense = r, func() float64 { return float64(r.nn.WritesDone()) }
	case "mapred":
		r := newMapredScaleRunner()
		inner, sense = r, func() float64 { return float64(r.c.MaxDiskUsed()) }
	case "fleetrpc":
		r := newFleetRPCScaleRunner()
		inner, sense = r, r.fleet.TotalLoad
	case "fleetllm":
		r := newFleetLLMScaleRunner()
		inner, sense = r, r.fleet.TotalLoad
	default:
		panic(fmt.Sprintf("experiments: unknown scale substrate %q", substrate))
	}
	return &loggedScaleRunner{inner: inner, conf: loggedScaleConf(substrate, log), sense: sense}
}

// loggedScaleConf synthesizes the shadow controller: a plausible linear
// profile and a hard goal, so every Update exercises the full Eq. 2 +
// virtual-goal + clamp + log pipeline. The knob value is read (forcing the
// decision) and discarded.
func loggedScaleConf(substrate string, log *declog.Log) *smartconf.Conf {
	profile := smartconf.NewProfile().
		Add(100, 10, 11, 12).
		Add(200, 20, 21, 22).
		Add(400, 40, 41, 39).
		Add(800, 80, 82, 81)
	conf, err := smartconf.New(smartconf.Spec{
		Name:    "scale." + substrate + ".shadow",
		Metric:  "shadow_load",
		Goal:    50,
		Hard:    true,
		Initial: 400,
		Min:     1, Max: 10_000,
	}, profile, smartconf.WithDecisionLog(log))
	if err != nil {
		panic(fmt.Sprintf("experiments: shadow controller synthesis: %v", err))
	}
	return conf
}

func (r *loggedScaleRunner) RunTo(n int64) {
	for {
		done := r.inner.Result().Requests
		if done >= n {
			return
		}
		target := done + scaleLogEvery
		if target > n {
			target = n
		}
		r.inner.RunTo(target)
		r.conf.SetPerf(r.sense())
		_ = r.conf.Value() // shadow decision: computed, clamped, logged, never actuated
	}
}

func (r *loggedScaleRunner) Result() ScaleResult { return r.inner.Result() }
