package experiments

import (
	"testing"
	"time"
)

// Diagnostic sweeps used during calibration; kept as regression telemetry.
func TestDiagHB3813Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, v := range []float64{25, 50, 75, 90, 110, 130, 150, 200, 300, 1000} {
		r := RunHB3813(Static(v))
		t.Logf("static %5.0f: met=%5v at=%8v tput=%6.2f", v, r.ConstraintMet, r.ViolatedAt, r.Tradeoff)
	}
	r := RunHB3813(SmartConf())
	knob, _ := r.SeriesByName("max.queue.size")
	t.Logf("smartconf: met=%v at=%v tput=%.2f knob(100s)=%.0f knob(600s)=%.0f",
		r.ConstraintMet, r.ViolatedAt, r.Tradeoff, knob.At(100*time.Second), knob.At(600*time.Second))
}

func TestDiagHB6728Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, v := range []float64{32, 64, 96, 128, 160, 192, 256} {
		r := RunHB6728(Static(v * float64(1<<20)))
		t.Logf("static %4.0fMB: met=%5v at=%8v tput=%6.2f", v, r.ConstraintMet, r.ViolatedAt, r.Tradeoff)
	}
	p := ProfileHB6728()
	t.Logf("profile λ=%.3f pole=%.3f", p.Lambda(), core_PoleForTest(p))
	r := RunHB6728(SmartConf())
	knob, _ := r.SeriesByName("response.queue.maxsize")
	mem, _ := r.SeriesByName("used_memory")
	t.Logf("smartconf: met=%v at=%v tput=%.2f knobMB(100s)=%.0f knobMB(600s)=%.0f memMaxMB=%.0f",
		r.ConstraintMet, r.ViolatedAt, r.Tradeoff,
		knob.At(100*time.Second)/(1<<20), knob.At(600*time.Second)/(1<<20), mem.Max()/(1<<20))
}

func TestDiagCA6059Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, v := range []float64{8, 16, 24, 32, 40, 48, 64, 96, 128, 192} {
		r := RunCA6059(Static(v * float64(1<<20)))
		t.Logf("static %4.0fMB: met=%5v at=%8v lat=%6.2fms", v, r.ConstraintMet, r.ViolatedAt, r.Tradeoff)
	}
	p := ProfileCA6059()
	t.Logf("profile λ=%.3f pole=%.3f", p.Lambda(), core_PoleForTest(p))
	r := RunCA6059(SmartConf())
	knob, _ := r.SeriesByName("memtable_total_space")
	mem, _ := r.SeriesByName("used_memory")
	t.Logf("smartconf: met=%v at=%v lat=%.2fms knobMB(100s)=%.0f knobMB(600s)=%.0f memMaxMB=%.0f",
		r.ConstraintMet, r.ViolatedAt, r.Tradeoff,
		knob.At(100*time.Second)/(1<<20), knob.At(600*time.Second)/(1<<20), mem.Max()/(1<<20))
}

func TestDiagHB2149Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, v := range []float64{0.05, 0.1, 0.2, 0.25, 0.35, 0.5, 0.65, 0.8, 0.95} {
		r := RunHB2149(Static(v))
		t.Logf("static %.2f: met=%5v at=%8v tput=%6.2f (predicted block %.1fs)", v, r.ConstraintMet, r.ViolatedAt, r.Tradeoff, hb2149Block(v))
	}
	p := ProfileHB2149()
	m, _ := p.Fit()
	t.Logf("profile model=%v λ=%.3f", m, p.Lambda())
	r := RunHB2149(SmartConf())
	knob, _ := r.SeriesByName("flush_fraction")
	t.Logf("smartconf: met=%v at=%v tput=%.2f frac(100s)=%.2f frac(600s)=%.2f",
		r.ConstraintMet, r.ViolatedAt, r.Tradeoff, knob.At(100*time.Second), knob.At(600*time.Second))
}

func TestDiagHD4995Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, v := range []float64{2000, 5000, 10000, 20000, 30000, 40000, 60000, 100000, 1e7} {
		r := RunHD4995(Static(v))
		t.Logf("static %8.0f: met=%5v at=%8v du=%6.1fs", v, r.ConstraintMet, r.ViolatedAt, r.Tradeoff)
	}
	p := ProfileHD4995()
	m, _ := p.Fit()
	t.Logf("profile model=%v λ=%.3f", m, p.Lambda())
	r := RunHD4995(SmartConf())
	knob, _ := r.SeriesByName("content-summary.limit")
	t.Logf("smartconf: met=%v at=%v du=%.1fs limit(300s)=%.0f limit(650s)=%.0f",
		r.ConstraintMet, r.ViolatedAt, r.Tradeoff, knob.At(300*time.Second), knob.At(650*time.Second))
}

func TestDiagMR2820Sweep(t *testing.T) {
	if testing.Short() {
		t.Skip("diagnostic")
	}
	for _, v := range []float64{0, 1, 50, 100, 150, 200, 230, 260, 300, 350, 420, 460} {
		r := RunMR2820(Static(v * float64(1<<20)))
		t.Logf("static %4.0fMB: met=%5v viol=%q makespan=%6.0fs", v, r.ConstraintMet, r.Violation, r.Tradeoff)
	}
	p := ProfileMR2820()
	m, _ := p.Fit()
	t.Logf("profile model=%v λ=%.3f", m, p.Lambda())
	r := RunMR2820(SmartConf())
	knob, _ := r.SeriesByName("minspacestart")
	t.Logf("smartconf: met=%v viol=%q makespan=%.0fs knobMB(60s)=%.0f",
		r.ConstraintMet, r.Violation, r.Tradeoff, knob.At(60*time.Second)/(1<<20))
}
