package experiments

import (
	"fmt"
	"strings"
	"time"

	"smartconf"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/memsim"
	"smartconf/internal/rpcserver"
	"smartconf/internal/workload"
)

// Figure 6: the HB3813 case study — SmartConf versus the static-optimal
// setting, with the time series behind panels (a) cumulative throughput,
// (b) used memory against the 495 MB constraint and the automatic virtual
// goal, and (c) the max.queue.size trajectory.

// Figure6 holds both runs plus the constraint annotations.
type Figure6 struct {
	SmartConf   Result
	Static      Result
	StaticVal   float64
	Goal        float64
	VirtualGoal float64
}

// BuildFigure6 runs the case study. The static comparator is the best
// setting from the Figure 5 sweep for HB3813.
func BuildFigure6() Figure6 {
	sc := HB3813Scenario()
	row := BuildFigure5Row(sc)
	smart := row.Bars[0].Result

	// Recover the virtual goal SmartConf derived, for the figure annotation.
	profile := ProfileHB3813()
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name: sc.Conf, Metric: "memory_consumption",
		Goal: float64(rpcMemoryGoal), Hard: true, Max: 5000,
	}, publicProfile(profile), nil)
	if err != nil {
		panic(err)
	}
	return Figure6{
		SmartConf:   smart,
		Static:      row.Optimal,
		StaticVal:   row.Optimal.Policy.Static,
		Goal:        float64(rpcMemoryGoal),
		VirtualGoal: ic.VirtualGoal(),
	}
}

// RenderFigure6 prints the three panels as aligned series samples.
func RenderFigure6(f Figure6) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 6: SmartConf vs static optimal on HB3813 (workload doubles request size mid-run)")
	fmt.Fprintf(&b, "memory constraint %.0fMB (hard); SmartConf virtual goal %.0fMB; static=%g\n\n",
		f.Goal/float64(mb), f.VirtualGoal/float64(mb), f.StaticVal)
	fmt.Fprintf(&b, "%8s | %12s %12s | %12s %12s | %12s %12s\n",
		"t(s)", "sc ops", "st ops", "sc memMB", "st memMB", "sc queue", "st queue")
	scOps, _ := f.SmartConf.SeriesByName("completed_ops")
	stOps, _ := f.Static.SeriesByName("completed_ops")
	scMem, _ := f.SmartConf.SeriesByName("used_memory")
	stMem, _ := f.Static.SeriesByName("used_memory")
	scQ, _ := f.SmartConf.SeriesByName("max.queue.size")
	stQ, _ := f.Static.SeriesByName("max.queue.size")
	for t := 25 * time.Second; t <= hb3813RunTime; t += 25 * time.Second {
		fmt.Fprintf(&b, "%8.0f | %12.0f %12.0f | %12.1f %12.1f | %12.0f %12.0f\n",
			t.Seconds(),
			scOps.At(t), stOps.At(t),
			scMem.At(t)/float64(mb), stMem.At(t)/float64(mb),
			scQ.At(t), stQ.At(t))
	}
	fmt.Fprintf(&b, "\nfinal throughput: SmartConf %.2f ops/s vs static %.2f ops/s (%.2fx)\n",
		f.SmartConf.Tradeoff, f.Static.Tradeoff, f.SmartConf.Speedup(f.Static))
	fmt.Fprintf(&b, "\nshape (0→%.0fs):\n", hb3813RunTime.Seconds())
	fmt.Fprintf(&b, "  sc memory %s\n", sparkline(scMem, 60, hb3813RunTime))
	fmt.Fprintf(&b, "  sc queue  %s\n", sparkline(scQ, 60, hb3813RunTime))
	return b.String()
}

// Figure 7: controller ablations on HB3813 under a less stable workload
// (70% writes / 30% reads). The single-pole controller (no danger-region
// switch) and the no-virtual-goal controller (targets the real limit) both
// OOM; full SmartConf survives — and no-virtual-goal dies first.

// Figure7 holds the three runs.
type Figure7 struct {
	SmartConf     Result
	SinglePole    Result
	NoVirtualGoal Result
}

func figure7Phases() []workload.YCSBPhase {
	return []workload.YCSBPhase{
		// A less stable mix than Figure 6's, with a request-size jump at
		// 60 s — the sudden, discrete disturbance §5.2 argues traditional
		// controllers cannot absorb.
		{Name: "unstable-1", Duration: 60 * time.Second, WriteRatio: 0.7, RequestBytes: 1 * mb},
		{Name: "unstable-2", WriteRatio: 0.7, RequestBytes: 2 * mb},
	}
}

const figure7RunTime = 180 * time.Second

// BuildFigure7 runs the ablation study.
func BuildFigure7() Figure7 {
	// The paper pins the pole at 0.9 for both SmartConf and the single-pole
	// baseline, so the danger-region pole and virtual goal are the only
	// mechanisms under test.
	// Steady overload (80 ops/s against ~56 ops/s of service) keeps the
	// queue pinned at its bound, so memory tracks the knob directly and the
	// controllers' reaction speed is the only variable.
	kinds := []PolicyKind{SmartConfPolicy, SinglePolePolicy, NoVirtualGoalPolicy}
	runs := engine.MapSlice(kinds, func(kind PolicyKind) Result {
		p := Policy{Kind: kind, FixedPole: 0.9}
		return memoResult("HB3813", policyKey(p), "figure7", 7813, func() Result {
			return runHB3813(p, figure7Phases(), figure7RunTime, 7813,
				1, 12500*time.Microsecond, time.Millisecond)
		})
	})
	return Figure7{
		SmartConf:     runs[0],
		SinglePole:    runs[1],
		NoVirtualGoal: runs[2],
	}
}

// RenderFigure7 prints the memory trajectories and OOM times.
func RenderFigure7(f Figure7) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 7: SmartConf vs alternative controllers on HB3813 (unstable 0.7W/0.3R workload)")
	describe := func(name string, r Result) {
		status := "satisfies the constraint"
		if !r.ConstraintMet {
			status = fmt.Sprintf("FAILS (%s at %.0fs)", r.Violation, r.ViolatedAt.Seconds())
		}
		fmt.Fprintf(&b, "  %-16s %s\n", name, status)
	}
	describe("SmartConf", f.SmartConf)
	describe("Single-Pole", f.SinglePole)
	describe("No-Virtual-Goal", f.NoVirtualGoal)
	fmt.Fprintln(&b)
	fmt.Fprintf(&b, "%8s | %12s %12s %12s   (used memory, MB; limit 495)\n",
		"t(s)", "SmartConf", "SinglePole", "NoVirtGoal")
	scMem, _ := f.SmartConf.SeriesByName("used_memory")
	spMem, _ := f.SinglePole.SeriesByName("used_memory")
	nvMem, _ := f.NoVirtualGoal.SeriesByName("used_memory")
	for t := 10 * time.Second; t <= figure7RunTime; t += 10 * time.Second {
		fmt.Fprintf(&b, "%8.0f | %12.1f %12.1f %12.1f\n", t.Seconds(),
			scMem.At(t)/float64(mb), spMem.At(t)/float64(mb), nvMem.At(t)/float64(mb))
	}
	fmt.Fprintf(&b, "\n  SmartConf  %s\n", sparkline(scMem, 60, figure7RunTime))
	fmt.Fprintf(&b, "  SinglePole %s (ends at OOM)\n", sparkline(spMem, 60, endOf(spMem)))
	fmt.Fprintf(&b, "  NoVirtGoal %s (ends at OOM)\n", sparkline(nvMem, 60, endOf(nvMem)))
	return b.String()
}

// Figure 8: two interacting PerfConfs — HB3813's request-queue bound and
// HB6728's response-queue bound — registered on ONE super-hard memory goal
// through the Manager, which derives the §5.4 interaction factor N=2 from
// the system file. The workload starts write-heavy and adds reads at ~50 s;
// memory must never exceed the constraint while both knobs adapt.

// Figure8 holds the run's series.
type Figure8 struct {
	Mem       Series
	ReqKnob   Series
	RespKnob  Series
	Goal      float64
	OOM       bool
	OOMAt     time.Duration
	Completed int64
}

const figure8RunTime = 240 * time.Second

const figure8Sys = `
/* SmartConf.sys for the interacting-queues study */
ipc.server.max.queue.size @ memory_consumption
ipc.server.max.queue.size = 0
ipc.server.max.queue.size.min = 0
ipc.server.max.queue.size.max = 5000

ipc.server.response.queue.maxsize @ memory_consumption
ipc.server.response.queue.maxsize = 0
ipc.server.response.queue.maxsize.min = 0
ipc.server.response.queue.maxsize.max = 1e9
`

const figure8Goals = `
memory_consumption.goal = 519045120  /* 495 MB */
memory_consumption.goal.superhard = 1
`

// BuildFigure8 runs the interacting-controllers study with the Manager
// deriving the §5.4 interaction factor (N = 2) from the system file.
func BuildFigure8() Figure8 {
	return buildFigure8(2)
}

// buildFigure8 runs the study with the interaction factor forced to n
// (n = 1 is the naive-composition ablation). Runs are memoized so the
// interaction-factor ablation shares the figure's N=2 run.
func buildFigure8(n int) Figure8 {
	return memoKeyed("HB3813+HB6728", fmt.Sprintf("N=%d", n), "figure8", 0,
		func() Figure8 { return buildFigure8Uncached(n) })
}

func buildFigure8Uncached(n int) Figure8 {
	s := newScenarioSim()
	heap := memsim.NewHeap(rpcHeapCapacity)
	cfg := hb6728Config()
	sv := rpcserver.New(s, heap, cfg)

	reqProfile := ProfileHB3813()
	respProfile := ProfileHB6728()
	var reqConf, respConf *smartconf.IndirectConf
	if n == 2 {
		// The production path: the Manager counts both bindings on the
		// super-hard metric and engages N = 2 automatically.
		mgr, err := smartconf.NewManager(
			strings.NewReader(figure8Sys),
			strings.NewReader(figure8Goals),
			smartconf.WithProfileSource(func(conf string) (*smartconf.Profile, error) {
				if conf == "ipc.server.max.queue.size" {
					return publicProfile(reqProfile), nil
				}
				return publicProfile(respProfile), nil
			}),
		)
		if err != nil {
			panic(fmt.Sprintf("figure 8 manager: %v", err))
		}
		if reqConf, err = mgr.IndirectConf("ipc.server.max.queue.size", nil); err != nil {
			panic(err)
		}
		if respConf, err = mgr.IndirectConf("ipc.server.response.queue.maxsize", nil); err != nil {
			panic(err)
		}
	} else {
		// Ablation: standalone controllers that each claim the full error.
		mk := func(name string, max float64, p *smartconf.Profile) *smartconf.IndirectConf {
			ic, err := smartconf.NewIndirect(smartconf.Spec{
				Name: name, Metric: "memory_consumption",
				Goal: float64(rpcMemoryGoal), SuperHard: true,
				Min: 0, Max: max, Interaction: n,
			}, p, nil)
			if err != nil {
				panic(err)
			}
			return ic
		}
		reqConf = mk("ipc.server.max.queue.size", 5000, publicProfile(reqProfile))
		respConf = mk("ipc.server.response.queue.maxsize", 1e9, publicProfile(respProfile))
	}
	sv.BeforeAdmit = func() {
		reqConf.SetPerf(float64(heap.Used()), float64(sv.QueueLen()))
		sv.SetMaxQueue(reqConf.Conf())
	}
	sv.BeforeRespond = func() {
		respConf.SetPerf(float64(heap.Used()), float64(sv.RespBytes()))
		sv.SetMaxRespBytes(int64(respConf.Value()))
	}

	f := Figure8{Goal: float64(rpcMemoryGoal)}
	heap.OnOOM(func() { f.OOM, f.OOMAt = true, s.Now() })

	f.Mem = Series{Name: "used_memory", Unit: "bytes"}
	f.ReqKnob = Series{Name: "max.queue.size", Unit: "items"}
	f.RespKnob = Series{Name: "response.queue.maxsize", Unit: "bytes"}
	s.Every(time.Second, time.Second, func() bool {
		f.Mem.Points = append(f.Mem.Points, Point{s.Now(), float64(heap.Used())})
		f.ReqKnob.Points = append(f.ReqKnob.Points, Point{s.Now(), float64(sv.MaxQueue())})
		f.RespKnob.Points = append(f.RespKnob.Points, Point{s.Now(), float64(sv.RespBytes())})
		return s.Now() < figure8RunTime && !heap.OOM()
	})

	// Write workload from the start; reads join at ~50 s (the paper's
	// second-workload arrival).
	writes := workload.NewYCSB(88, 1000, workload.YCSBPhase{WriteRatio: 1, RequestBytes: 1 * mb})
	s.Every(0, 50*time.Millisecond, func() bool {
		sv.Offer(writes.NextOp())
		return s.Now() < figure8RunTime && !heap.OOM()
	})
	reads := workload.NewYCSB(89, 1000, workload.YCSBPhase{WriteRatio: 0, RequestBytes: 4 << 10})
	s.Every(50*time.Second, 60*time.Millisecond, func() bool {
		sv.Offer(hb6728Op(reads.NextOp()))
		return s.Now() < figure8RunTime && !heap.OOM()
	})

	s.RunUntil(figure8RunTime)
	f.Completed = sv.Completed()
	return f
}

// RenderFigure8 prints the shared-goal study.
func RenderFigure8(f Figure8) string {
	var b strings.Builder
	fmt.Fprintln(&b, "Figure 8: two interacting PerfConfs on one super-hard memory goal (reads join at 50s)")
	if f.OOM {
		fmt.Fprintf(&b, "VIOLATION: OOM at %.0fs\n", f.OOMAt.Seconds())
	} else {
		fmt.Fprintf(&b, "memory never exceeded the %.0fMB constraint; %d calls completed\n",
			f.Goal/float64(mb), f.Completed)
	}
	fmt.Fprintf(&b, "\n%8s | %10s | %12s %16s\n", "t(s)", "memMB", "max.queue", "resp.queueMB")
	for t := 10 * time.Second; t <= figure8RunTime; t += 10 * time.Second {
		fmt.Fprintf(&b, "%8.0f | %10.1f | %12.0f %16.1f\n", t.Seconds(),
			f.Mem.At(t)/float64(mb), f.ReqKnob.At(t), f.RespKnob.At(t)/float64(mb))
	}
	fmt.Fprintf(&b, "\n  memory     %s\n", sparkline(f.Mem, 60, figure8RunTime))
	fmt.Fprintf(&b, "  req knob   %s\n", sparkline(f.ReqKnob, 60, figure8RunTime))
	fmt.Fprintf(&b, "  resp bytes %s\n", sparkline(f.RespKnob, 60, figure8RunTime))
	return b.String()
}
