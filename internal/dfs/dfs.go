// Package dfs simulates an HDFS-like namenode for the paper's HD4995 issue:
// the du/content-summary operation walks the namespace under the global
// namesystem lock, yielding the lock every content-summary.limit files so
// that writers can make progress.
//
// The knob trades two latencies: a large limit holds the lock long,
// blocking concurrent writers (the user complaint: "write blocked for
// long"); a small limit re-acquires the lock constantly, inflating the du
// latency itself. The configuration is conditional — it only matters while
// a du is running — and indirect: the controller steers the actual
// files-per-hold (the deputy), which is the knob except at the final
// partial chunk.
package dfs

import (
	"time"

	"smartconf/internal/metrics"
	"smartconf/internal/sim"
)

// Config fixes the namenode's cost parameters.
type Config struct {
	// PerFileCost is the traversal cost per file under the lock.
	PerFileCost time.Duration
	// ReacquireOverhead is the cost of releasing and re-taking the lock
	// between chunks (wakeups, queue churn).
	ReacquireOverhead time.Duration
	// InitialFiles is the namespace size at startup.
	InitialFiles int
}

// DefaultConfig returns the calibration used by the HD4995 experiments.
func DefaultConfig() Config {
	return Config{
		PerFileCost:       200 * time.Microsecond,
		ReacquireOverhead: 50 * time.Millisecond,
		InitialFiles:      1_000_000,
	}
}

type duRequest struct {
	submitted time.Duration
	done      func(latency time.Duration)
}

// NameNode is the simulated namenode.
type NameNode struct {
	sim *sim.Simulation
	cfg Config

	files int
	limit int // the knob: files traversed per lock hold

	lockHeld  bool
	duRunning bool
	lastChunk int // files processed in the most recent lock hold
	duQueue   []duRequest

	pendingWrites []time.Duration // submit times of writes blocked on the lock

	holdTimes  *metrics.Latency // lock-hold durations: the constrained metric
	blockTimes *metrics.Latency // actual writer waits (diagnostics)
	duLatency  *metrics.Latency // the trade-off metric

	writesDone metrics.Counter
	dusDone    metrics.Counter

	// BeforeChunk, when set, runs before each lock acquisition during a du —
	// the integration point for this conditional configuration.
	BeforeChunk func()
}

// New returns a namenode with the given initial chunk limit.
func New(s *sim.Simulation, cfg Config, limit int) *NameNode {
	return &NameNode{
		sim:        s,
		cfg:        cfg,
		files:      cfg.InitialFiles,
		limit:      clampLimit(limit),
		holdTimes:  metrics.NewLatency(128),
		blockTimes: metrics.NewLatency(512),
		duLatency:  metrics.NewLatency(64),
	}
}

func clampLimit(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// SetLimit adjusts the content-summary.limit knob.
func (nn *NameNode) SetLimit(n int) { nn.limit = clampLimit(n) }

// Limit returns the current knob value.
func (nn *NameNode) Limit() int { return nn.limit }

// SetPerFileCost changes the per-file traversal cost mid-run (fault
// injection: a plant shift — slower metadata storage, cold caches). The cost
// is read per chunk, so the change applies from the next lock acquisition.
func (nn *NameNode) SetPerFileCost(d time.Duration) {
	if d < 0 {
		d = 0
	}
	nn.cfg.PerFileCost = d
}

// LastChunkFiles returns the deputy variable: how many files the most
// recent lock hold actually traversed (equal to the limit except at a
// traversal's final partial chunk).
func (nn *NameNode) LastChunkFiles() int { return nn.lastChunk }

// Files returns the namespace size.
func (nn *NameNode) Files() int { return nn.files }

// HoldTimes tracks per-chunk lock-hold durations — the worst case bounds how
// long any writer can be blocked, so this is the constrained metric.
func (nn *NameNode) HoldTimes() *metrics.Latency { return nn.holdTimes }

// BlockTimes tracks the waits writers actually experienced.
func (nn *NameNode) BlockTimes() *metrics.Latency { return nn.blockTimes }

// DuLatency tracks end-to-end du latencies — the trade-off metric.
func (nn *NameNode) DuLatency() *metrics.Latency { return nn.duLatency }

// WritesDone returns the number of completed writes.
func (nn *NameNode) WritesDone() int64 { return nn.writesDone.Value() }

// DusDone returns the number of completed du operations.
func (nn *NameNode) DusDone() int64 { return nn.dusDone.Value() }

// Write creates one file. If the du traversal holds the lock, the write
// waits for the next release.
//
//smartconf:hotpath
func (nn *NameNode) Write() {
	if nn.lockHeld {
		nn.pendingWrites = append(nn.pendingWrites, nn.sim.Now())
		return
	}
	nn.applyWrite(0)
}

func (nn *NameNode) applyWrite(waited time.Duration) {
	nn.files++
	nn.writesDone.Inc()
	nn.blockTimes.Observe(waited)
}

// Du submits a content-summary request; done (optional) receives the
// end-to-end latency. Concurrent requests serialize FIFO.
func (nn *NameNode) Du(done func(latency time.Duration)) {
	nn.duQueue = append(nn.duQueue, duRequest{submitted: nn.sim.Now(), done: done})
	if !nn.duRunning {
		nn.startNextDu()
	}
}

func (nn *NameNode) startNextDu() {
	if len(nn.duQueue) == 0 {
		nn.duRunning = false
		return
	}
	nn.duRunning = true
	req := nn.duQueue[0]
	nn.duQueue = nn.duQueue[1:]
	remaining := nn.files // snapshot: files added later are not traversed
	nn.chunk(req, remaining)
}

func (nn *NameNode) chunk(req duRequest, remaining int) {
	if remaining <= 0 {
		lat := nn.sim.Now() - req.submitted
		nn.duLatency.Observe(lat)
		nn.dusDone.Inc()
		if req.done != nil {
			req.done(lat)
		}
		nn.startNextDu()
		return
	}
	if nn.BeforeChunk != nil {
		nn.BeforeChunk()
	}
	n := nn.limit
	if n > remaining {
		n = remaining
	}
	nn.lockHeld = true
	nn.lastChunk = n
	holdStart := nn.sim.Now()
	nn.sim.After(time.Duration(n)*nn.cfg.PerFileCost, func() {
		nn.lockHeld = false
		nn.holdTimes.Observe(nn.sim.Now() - holdStart)
		// Writers that piled up behind the lock complete now.
		pending := nn.pendingWrites
		nn.pendingWrites = nil
		for _, at := range pending {
			nn.applyWrite(nn.sim.Now() - at)
		}
		nn.sim.After(nn.cfg.ReacquireOverhead, func() {
			nn.chunk(req, remaining-n)
		})
	})
}
