package dfs

import (
	"testing"
	"time"

	"smartconf/internal/sim"
)

func smallConfig() Config {
	return Config{
		PerFileCost:       time.Millisecond,
		ReacquireOverhead: 10 * time.Millisecond,
		InitialFiles:      1000,
	}
}

func TestDuCompletesAndMeasuresLatency(t *testing.T) {
	s := sim.New()
	nn := New(s, smallConfig(), 100)
	var got time.Duration
	s.At(0, func() {
		nn.Du(func(lat time.Duration) { got = lat })
	})
	s.Run()
	// 1000 files × 1ms + 10 chunks × 10ms reacquire = 1.0s + 0.1s.
	want := 1100 * time.Millisecond
	if got < want-50*time.Millisecond || got > want+50*time.Millisecond {
		t.Errorf("du latency = %v, want ≈%v", got, want)
	}
	if nn.DusDone() != 1 {
		t.Errorf("dusDone = %d", nn.DusDone())
	}
}

func TestHoldTimeScalesWithLimit(t *testing.T) {
	run := func(limit int) time.Duration {
		s := sim.New()
		nn := New(s, smallConfig(), limit)
		s.At(0, func() { nn.Du(nil) })
		s.Run()
		return nn.HoldTimes().Worst()
	}
	small, large := run(10), run(500)
	if small >= large {
		t.Errorf("hold(limit=10)=%v should be < hold(limit=500)=%v", small, large)
	}
	if large < 450*time.Millisecond || large > 550*time.Millisecond {
		t.Errorf("hold(500) = %v, want ≈500ms", large)
	}
}

func TestSmallLimitInflatesDuLatency(t *testing.T) {
	run := func(limit int) time.Duration {
		s := sim.New()
		nn := New(s, smallConfig(), limit)
		s.At(0, func() { nn.Du(nil) })
		s.Run()
		return nn.DuLatency().Worst()
	}
	small, large := run(5), run(1000)
	if small <= large {
		t.Errorf("du(limit=5)=%v should exceed du(limit=1000)=%v (reacquire overhead)", small, large)
	}
}

func TestWritersBlockDuringHold(t *testing.T) {
	s := sim.New()
	cfg := smallConfig()
	nn := New(s, cfg, 1000) // one giant 1s hold
	s.At(0, func() { nn.Du(nil) })
	s.At(100*time.Millisecond, func() { nn.Write() }) // lands mid-hold
	s.Run()
	if nn.WritesDone() != 1 {
		t.Fatalf("writesDone = %d", nn.WritesDone())
	}
	// Blocked from 100ms until the hold ends at ~1000ms.
	blocked := nn.BlockTimes().Worst()
	if blocked < 850*time.Millisecond || blocked > 950*time.Millisecond {
		t.Errorf("writer block = %v, want ≈900ms", blocked)
	}
}

func TestWritesOutsideDuAreInstant(t *testing.T) {
	s := sim.New()
	nn := New(s, smallConfig(), 10)
	s.At(0, func() { nn.Write() })
	s.Run()
	if nn.WritesDone() != 1 || nn.BlockTimes().Worst() != 0 {
		t.Errorf("writesDone=%d block=%v", nn.WritesDone(), nn.BlockTimes().Worst())
	}
	if nn.Files() != smallConfig().InitialFiles+1 {
		t.Errorf("files = %d", nn.Files())
	}
}

func TestDuSnapshotExcludesConcurrentWrites(t *testing.T) {
	s := sim.New()
	cfg := smallConfig()
	cfg.InitialFiles = 100
	nn := New(s, cfg, 10)
	var lat time.Duration
	s.At(0, func() { nn.Du(func(d time.Duration) { lat = d }) })
	// Writes landing during the du grow the namespace but not this du's work.
	s.Every(5*time.Millisecond, 5*time.Millisecond, func() bool {
		nn.Write()
		return s.Now() < 150*time.Millisecond
	})
	s.Run()
	// 100 files ×1ms + 10 reacquires ×10ms = 200ms regardless of new files.
	if lat < 190*time.Millisecond || lat > 220*time.Millisecond {
		t.Errorf("du latency = %v, want ≈200ms", lat)
	}
	if nn.Files() <= 100 {
		t.Error("concurrent writes lost")
	}
}

func TestConcurrentDusSerialize(t *testing.T) {
	s := sim.New()
	nn := New(s, smallConfig(), 100)
	var first, second time.Duration
	s.At(0, func() {
		nn.Du(func(d time.Duration) { first = d })
		nn.Du(func(d time.Duration) { second = d })
	})
	s.Run()
	if nn.DusDone() != 2 {
		t.Fatalf("dusDone = %d", nn.DusDone())
	}
	if second <= first {
		t.Errorf("second du latency %v should include waiting for the first (%v)", second, first)
	}
}

func TestBeforeChunkHookAndLimitAdjustment(t *testing.T) {
	s := sim.New()
	cfg := smallConfig()
	cfg.InitialFiles = 100
	nn := New(s, cfg, 50)
	chunks := 0
	nn.BeforeChunk = func() {
		chunks++
		nn.SetLimit(25) // controller shrinks the chunk mid-du
	}
	s.At(0, func() { nn.Du(nil) })
	s.Run()
	// First chunk 50 (hook fires before adjustment takes effect on THIS
	// chunk? No: hook runs before n is chosen, so all chunks are 25 after
	// the first call adjusts) → 100/25 = 4 chunks.
	if chunks != 4 {
		t.Errorf("chunks = %d, want 4 (limit lowered to 25 by the hook)", chunks)
	}
	if nn.Limit() != 25 {
		t.Errorf("limit = %d", nn.Limit())
	}
}

func TestLimitClamp(t *testing.T) {
	s := sim.New()
	nn := New(s, smallConfig(), 0)
	if nn.Limit() != 1 {
		t.Errorf("limit = %d, want clamped to 1", nn.Limit())
	}
	nn.SetLimit(-10)
	if nn.Limit() != 1 {
		t.Errorf("limit = %d, want clamped to 1", nn.Limit())
	}
}
