package mapred

import (
	"testing"
	"time"

	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

func testJob() workload.WordCountJob {
	return workload.WordCountJob{
		Name:        "test",
		InputBytes:  160 << 20,
		SplitBytes:  16 << 20, // 10 tasks × 16 MB intermediate
		Parallelism: 2,
	}
}

func TestJobCompletes(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig(), 0)
	var res JobResult
	gotResult := false
	s.At(0, func() {
		c.RunJob(testJob(), func(r JobResult) { res = r; gotResult = true })
	})
	s.RunUntil(10 * time.Minute)
	if !gotResult {
		t.Fatal("job did not finish")
	}
	if res.Failed || res.FailedTasks != 0 {
		t.Errorf("result = %+v", res)
	}
	if res.TotalTasks != 10 {
		t.Errorf("tasks = %d, want 10", res.TotalTasks)
	}
	// 10 tasks ×2s each (16MB @ 8MB/s), 4 slots: ≈3 waves ≈6s + gaps.
	if res.Duration < 5*time.Second || res.Duration > 30*time.Second {
		t.Errorf("duration = %v, want ≈6s", res.Duration)
	}
	if c.JobsDone() != 1 || c.JobsFailed() != 0 {
		t.Errorf("done=%d failed=%d", c.JobsDone(), c.JobsFailed())
	}
	// Teardown freed all intermediates.
	for _, w := range c.Workers() {
		if w.Disk.Used() != w.CoTenant() {
			t.Errorf("worker %d: disk used %d after teardown", w.ID, w.Disk.Used())
		}
	}
}

func TestZeroMinspaceWithFullDiskFailsJob(t *testing.T) {
	// MR2820's failure mode: minspacestart = 0 admits tasks onto a
	// nearly-full disk; the task ENOSPCs mid-write.
	s := sim.New()
	cfg := DefaultConfig()
	c := New(s, cfg, 0)
	for _, w := range c.Workers() {
		w.SetCoTenant(cfg.DiskCapacityBytes - 4<<20) // only 4 MB free anywhere
	}
	var res JobResult
	s.At(0, func() {
		c.RunJob(testJob(), func(r JobResult) { res = r })
	})
	s.RunUntil(10 * time.Minute)
	if !res.Failed || res.FailedTasks == 0 {
		t.Fatalf("expected OOD job failure, got %+v", res)
	}
	if !c.OOD() {
		t.Error("OOD flag not set on any disk")
	}
}

func TestLargeMinspaceDelaysButSucceeds(t *testing.T) {
	// With a conservative minspacestart, tasks wait for co-tenant churn to
	// free space instead of crashing.
	s := sim.New()
	cfg := DefaultConfig()
	c := New(s, cfg, 300<<20)
	for _, w := range c.Workers() {
		w.SetCoTenant(cfg.DiskCapacityBytes - 100<<20)
	}
	// Co-tenant releases space after 60 s.
	s.At(60*time.Second, func() {
		for _, w := range c.Workers() {
			w.SetCoTenant(100 << 20)
		}
	})
	var res JobResult
	gotResult := false
	s.At(0, func() {
		c.RunJob(testJob(), func(r JobResult) { res = r; gotResult = true })
	})
	s.RunUntil(30 * time.Minute)
	if !gotResult {
		t.Fatal("job never finished")
	}
	if res.Failed {
		t.Fatalf("job failed: %+v", res)
	}
	if res.Duration < time.Minute {
		t.Errorf("duration = %v; should include the 60s wait", res.Duration)
	}
}

func TestCoTenantClampsToFreeSpace(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	c := New(s, cfg, 0)
	w := c.Workers()[0]
	w.SetCoTenant(cfg.DiskCapacityBytes * 2) // wants more than the disk
	if w.CoTenant() != cfg.DiskCapacityBytes {
		t.Errorf("coTenant = %d, want clamped to capacity", w.CoTenant())
	}
	if w.Disk.OOD() {
		t.Error("polite co-tenant must not trip OOD")
	}
	w.SetCoTenant(-5)
	if w.CoTenant() != 0 {
		t.Errorf("coTenant = %d, want 0", w.CoTenant())
	}
}

func TestBeforeScheduleHookSeesWorker(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig(), 0)
	seen := map[int]bool{}
	c.BeforeSchedule = func(w *Worker, _ int64) { seen[w.ID] = true }
	s.At(0, func() { c.RunJob(testJob(), nil) })
	s.RunUntil(5 * time.Minute)
	if len(seen) != DefaultConfig().Workers {
		t.Errorf("hook saw %d workers, want %d", len(seen), DefaultConfig().Workers)
	}
}

func TestMinSpaceGatesAdmission(t *testing.T) {
	s := sim.New()
	cfg := DefaultConfig()
	c := New(s, cfg, cfg.DiskCapacityBytes+1) // impossible requirement
	started := false
	c.BeforeSchedule = func(w *Worker, _ int64) {
		if w.Running() > 0 {
			started = true
		}
	}
	s.At(0, func() { c.RunJob(testJob(), nil) })
	s.RunUntil(30 * time.Second)
	if started || c.Busy() == false {
		t.Errorf("tasks must not start with minspace=capacity (started=%v busy=%v)", started, c.Busy())
	}
	// Lower the knob at run time: the job proceeds.
	s.At(30*time.Second, func() { c.SetMinSpaceStart(0) })
	s.RunUntil(10 * time.Minute)
	if c.JobsDone() != 1 {
		t.Errorf("jobsDone = %d after knob drop", c.JobsDone())
	}
}

func TestDoubleSubmitPanics(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig(), 0)
	s.At(0, func() {
		c.RunJob(testJob(), nil)
		defer func() {
			if recover() == nil {
				t.Error("expected panic on concurrent RunJob")
			}
		}()
		c.RunJob(testJob(), nil)
	})
	s.RunUntil(time.Second)
}

func TestMaxDiskUsedSensor(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig(), 0)
	c.Workers()[0].SetCoTenant(10 << 20)
	c.Workers()[1].SetCoTenant(30 << 20)
	if got := c.MaxDiskUsed(); got != 30<<20 {
		t.Errorf("MaxDiskUsed = %d, want 30MB", got)
	}
	if c.MinSpaceStart() != 0 {
		t.Errorf("MinSpaceStart = %d", c.MinSpaceStart())
	}
	c.SetMinSpaceStart(-1)
	if c.MinSpaceStart() != 0 {
		t.Error("negative knob should clamp to 0")
	}
}

func TestReducePhaseRunsAfterMaps(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig(), 0)
	job := testJob()
	job.Reducers = 2
	var res JobResult
	var mapOnly JobResult
	s.At(0, func() {
		c.RunJob(job, func(r JobResult) {
			res = r
			// Back-to-back: a map-only job for the duration baseline.
			c.RunJob(testJob(), func(r2 JobResult) { mapOnly = r2 })
		})
	})
	s.RunUntil(30 * time.Minute)
	if res.Failed || mapOnly.Failed {
		t.Fatalf("jobs failed: %+v %+v", res, mapOnly)
	}
	if res.Duration <= mapOnly.Duration {
		t.Errorf("reduce phase added no time: %v vs map-only %v", res.Duration, mapOnly.Duration)
	}
	// Reducers leave no residue on the local disks.
	for _, w := range c.Workers() {
		if w.Disk.Used() != w.CoTenant() {
			t.Errorf("worker %d: %d bytes left after teardown", w.ID, w.Disk.Used())
		}
	}
}

func TestTaskTimesSensor(t *testing.T) {
	s := sim.New()
	c := New(s, DefaultConfig(), 0)
	s.At(0, func() { c.RunJob(testJob(), func(JobResult) {}) })
	s.RunUntil(10 * time.Minute)
	lat := c.TaskTimes()
	if lat.Count() != 10 {
		t.Fatalf("task samples = %d, want 10 (one per map task)", lat.Count())
	}
	// Every task writes 16 MB at 8 MB/s: all completion times are ≈2s
	// regardless of which wave the task ran in (queueing happens before
	// launch, not inside the tracked span).
	want := 2 * time.Second
	for _, got := range []time.Duration{lat.Mean(), lat.Percentile(50), lat.WindowMax()} {
		if got < want*9/10 || got > want*11/10 {
			t.Errorf("task time sensor read %v, want ≈%v", got, want)
		}
	}
}
