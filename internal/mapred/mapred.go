// Package mapred simulates a small MapReduce cluster for the paper's MR2820
// issue: mapreduce local.dir.minspacestart decides how much free local disk
// a worker must have before it starts another task.
//
// Too small, and a task starts on a nearly-full disk shared with a
// fluctuating co-tenant, runs out of space mid-write and fails the job
// (out-of-disk, the hard constraint). Too large, and workers sit idle while
// space is actually available, stretching job completion time (the
// trade-off metric). The knob is conditional — consulted only at task
// admission — and direct.
package mapred

import (
	"time"

	"smartconf/internal/disksim"
	"smartconf/internal/metrics"
	"smartconf/internal/sim"
	"smartconf/internal/workload"
)

// Config fixes the cluster's capacity parameters.
type Config struct {
	// Workers is the number of worker nodes.
	Workers int
	// DiskCapacityBytes is each worker's local disk size.
	DiskCapacityBytes int64
	// TaskBytesPerSec is a task's intermediate-write rate; a task with
	// intermediate footprint B runs for B/TaskBytesPerSec.
	TaskBytesPerSec int64
	// WriteChunks is how many installments a task's intermediate output is
	// written in (failures can strike mid-task).
	WriteChunks int
	// ScheduleInterval is the master's scheduling period.
	ScheduleInterval time.Duration
}

// DefaultConfig returns the calibration used by the MR2820 experiments.
func DefaultConfig() Config {
	return Config{
		Workers:           2,
		DiskCapacityBytes: 1 << 30, // 1 GB local disk per worker
		TaskBytesPerSec:   8 << 20, // 8 MB/s
		WriteChunks:       8,
		ScheduleInterval:  time.Second,
	}
}

// Worker is one node: a local disk shared between task intermediates and a
// co-tenant whose footprint the experiment steers as the disturbance.
type Worker struct {
	ID   int
	Disk *disksim.Disk

	running   int
	committed int64 // admitted-but-unwritten task bytes (reservations)
	coTenant  int64
}

// Committed returns the bytes admitted tasks still intend to write. The
// sum Disk.Used()+Committed() is the forward-looking occupancy sensor the
// MR2820 controller reads: it reflects an admission immediately, before the
// task's writes land.
func (w *Worker) Committed() int64 { return w.committed }

// SetCoTenant steers the co-tenant's footprint toward bytes. The co-tenant
// is polite: it grows only into available space, but it does not care about
// the MapReduce job's needs — that is exactly the disturbance that makes a
// static minspacestart unsafe.
func (w *Worker) SetCoTenant(bytes int64) {
	if bytes < 0 {
		bytes = 0
	}
	delta := bytes - w.coTenant
	if delta > 0 {
		if free := w.Disk.Free(); delta > free {
			delta = free
		}
		if delta > 0 {
			if err := w.Disk.Write(delta); err != nil {
				return
			}
			w.coTenant += delta
		}
	} else if delta < 0 {
		w.Disk.Delete(-delta)
		w.coTenant += delta
	}
}

// CoTenant returns the co-tenant's current footprint.
func (w *Worker) CoTenant() int64 { return w.coTenant }

// Running returns the number of tasks currently executing on the worker.
func (w *Worker) Running() int { return w.running }

// JobResult summarizes one job run.
type JobResult struct {
	Duration    time.Duration
	Failed      bool
	FailedTasks int
	TotalTasks  int
}

// taskSlot is the in-flight state of one running map task. Slots live in a
// table owned by the Cluster and are recycled through a free list, so a
// steady stream of tasks allocates nothing: the slot index rides in the
// packed event argument instead of a per-task closure.
type taskSlot struct {
	worker     *Worker
	written    int64
	bytes      int64
	chunkBytes int64
	rem        int64
	chunk      int
	chunks     int
	step       time.Duration
	started    time.Duration
}

// jobState is the master's view of the one running job. Map tasks are
// homogeneous (WordCount splits evenly), so the pending queue is a counter
// plus the per-task footprint rather than a slice of identical entries.
type jobState struct {
	job         workload.WordCountJob
	pendingN    int
	taskBytes   int64
	runningN    int
	failedTasks int
	started     time.Duration
	done        func(JobResult)

	mapsDone   int
	reducing   bool
	reducersUp int
}

// Cluster is the simulated MapReduce master plus its workers.
type Cluster struct {
	sim *sim.Simulation
	cfg Config

	workers []*Worker

	minSpaceStart int64 // the knob

	// current points at js while a job is running, nil otherwise; js itself
	// is reused across jobs so back-to-back submission allocates nothing.
	current *jobState
	js      jobState
	// epoch increments per RunJob; events carry the epoch they were
	// scheduled under and no-op when a stale one fires after its job ended.
	epoch uint32

	slots     []taskSlot
	freeSlots []int

	// Event handlers bound once at construction: a method value created at a
	// call site allocates, a stored func(uint64) field does not.
	chunkFn  func(uint64)
	tickFn   func(uint64)
	reduceFn func(uint64)

	jobsDone   metrics.Counter
	jobsFailed metrics.Counter
	taskTimes  *metrics.Latency

	// BeforeSchedule, when set, runs before each admission check — the
	// integration point for this conditional configuration. It receives the
	// candidate worker and the footprint of the task about to be placed, so
	// a controller can reason about the occupancy the admission would
	// create. (MR2820's patch notes: the Master computes the setting and
	// ships it to the workers; here that shipping is the function call.)
	BeforeSchedule func(w *Worker, nextTaskBytes int64)
}

// New builds a cluster with the given initial minspacestart.
func New(s *sim.Simulation, cfg Config, minSpaceStart int64) *Cluster {
	c := &Cluster{sim: s, cfg: cfg, minSpaceStart: minSpaceStart, taskTimes: metrics.NewLatency(512)}
	for i := 0; i < cfg.Workers; i++ {
		c.workers = append(c.workers, &Worker{ID: i, Disk: disksim.NewDisk(cfg.DiskCapacityBytes)})
	}
	c.chunkFn = c.writeChunk
	c.tickFn = c.schedulerTick
	c.reduceFn = c.reduceDone
	return c
}

// SetMinSpaceStart adjusts the knob (bytes).
func (c *Cluster) SetMinSpaceStart(v int64) {
	if v < 0 {
		v = 0
	}
	c.minSpaceStart = v
}

// MinSpaceStart returns the current knob value.
func (c *Cluster) MinSpaceStart() int64 { return c.minSpaceStart }

// SetTaskBytesPerSec changes the task write rate mid-run (fault injection: a
// plant shift — co-tenant I/O contention slowing the local disks). The rate
// is read at task launch, so running tasks keep their original schedule.
func (c *Cluster) SetTaskBytesPerSec(v int64) {
	if v < 1 {
		v = 1
	}
	c.cfg.TaskBytesPerSec = v
}

// Workers returns the worker nodes (for disturbance injection and sensors).
func (c *Cluster) Workers() []*Worker { return c.workers }

// MaxDiskUsed returns the highest disk occupancy across workers — the
// sensor for the hard out-of-disk goal.
func (c *Cluster) MaxDiskUsed() int64 {
	var max int64
	for _, w := range c.workers {
		if u := w.Disk.Used(); u > max {
			max = u
		}
	}
	return max
}

// OOD reports whether any worker disk has rejected a write.
func (c *Cluster) OOD() bool {
	for _, w := range c.workers {
		if w.Disk.OOD() {
			return true
		}
	}
	return false
}

// JobsDone returns the number of successfully completed jobs.
func (c *Cluster) JobsDone() int64 { return c.jobsDone.Value() }

// JobsFailed returns the number of failed jobs.
func (c *Cluster) JobsFailed() int64 { return c.jobsFailed.Value() }

// TaskTimes returns the map-task completion-time tracker: wall time from
// launch to shuffle-off, over the last 512 completed tasks. Admission
// stalls show up here before they show up in whole-job latency, so it is
// the natural per-period sensor for minspacestart controllers.
func (c *Cluster) TaskTimes() *metrics.Latency { return c.taskTimes }

// Busy reports whether a job is currently running.
func (c *Cluster) Busy() bool { return c.current != nil }

// RunJob starts a WordCount job; done receives the result. Only one job
// runs at a time (submitting while busy panics — the experiment drives jobs
// sequentially, as the paper's WordCount phases do).
//
//smartconf:hotpath
func (c *Cluster) RunJob(job workload.WordCountJob, done func(JobResult)) {
	if c.current != nil {
		panic("mapred: job already running")
	}
	c.epoch++
	c.js = jobState{
		job:       job,
		started:   c.sim.Now(),
		done:      done,
		taskBytes: job.IntermediateBytesPerTask(),
		pendingN:  job.MapTasks(),
	}
	c.current = &c.js
	c.schedule()
	c.sim.AfterArg(c.cfg.ScheduleInterval, c.tickFn, uint64(c.epoch))
}

// schedulerTick is the master's periodic admission pass. Like the chunk and
// reduce handlers, it reschedules itself unconditionally (matching the old
// Every loop) and lets the epoch guard retire the one stale tick left
// pending when its job ends.
//
//smartconf:hotpath
func (c *Cluster) schedulerTick(arg uint64) {
	if uint32(arg) != c.epoch || c.current == nil {
		return
	}
	c.schedule()
	c.sim.AfterArg(c.cfg.ScheduleInterval, c.tickFn, arg)
}

func (c *Cluster) schedule() {
	js := c.current
	if js == nil {
		return
	}
	for _, w := range c.workers {
		for w.running < js.job.Parallelism && js.pendingN > 0 {
			if c.BeforeSchedule != nil {
				c.BeforeSchedule(w, js.taskBytes)
			}
			if w.Disk.Free() < c.minSpaceStart {
				break // this worker lacks headroom; try the next
			}
			js.pendingN--
			c.launch(w, js.taskBytes)
		}
	}
	c.maybeFinish()
}

func (c *Cluster) takeSlot() int {
	if n := len(c.freeSlots); n > 0 {
		s := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return s
	}
	c.slots = append(c.slots, taskSlot{})
	return len(c.slots) - 1
}

func (c *Cluster) releaseSlot(slot int) {
	c.slots[slot] = taskSlot{}
	c.freeSlots = append(c.freeSlots, slot)
}

// chunkArg packs a slot index and the scheduling epoch into one event
// argument: slot in the high 32 bits, epoch in the low 32.
func chunkArg(slot int, epoch uint32) uint64 {
	return uint64(slot)<<32 | uint64(epoch)
}

func (c *Cluster) launch(w *Worker, bytes int64) {
	w.running++
	w.committed += bytes
	c.js.runningN++
	chunks := c.cfg.WriteChunks
	if chunks < 1 {
		chunks = 1
	}
	chunkBytes := bytes / int64(chunks)
	rem := bytes - chunkBytes*int64(chunks)
	total := time.Duration(float64(bytes) / float64(c.cfg.TaskBytesPerSec) * float64(time.Second))
	step := total / time.Duration(chunks)

	slot := c.takeSlot()
	c.slots[slot] = taskSlot{
		worker:     w,
		bytes:      bytes,
		chunkBytes: chunkBytes,
		rem:        rem,
		chunks:     chunks,
		step:       step, // captured here: SetTaskBytesPerSec affects new launches only
		started:    c.sim.Now(),
	}
	c.sim.AfterArg(step, c.chunkFn, chunkArg(slot, c.epoch))
}

// writeChunk lands one installment of a task's intermediate output.
//
//smartconf:hotpath
func (c *Cluster) writeChunk(arg uint64) {
	if uint32(arg) != c.epoch || c.current == nil {
		return
	}
	slot := int(arg >> 32)
	st := &c.slots[slot]
	w := st.worker
	b := st.chunkBytes
	if st.chunk == st.chunks-1 {
		b += st.rem
	}
	if err := w.Disk.Write(b); err != nil {
		// Out of disk mid-task: the task fails; its partial output is
		// cleaned up, but the job is marked failed.
		w.Disk.Delete(st.written)
		w.committed -= st.bytes - st.written
		w.running--
		c.js.runningN--
		c.js.failedTasks++
		c.releaseSlot(slot)
		c.maybeFinish()
		return
	}
	st.written += b
	w.committed -= b
	st.chunk++
	if st.chunk < st.chunks {
		c.sim.AfterArg(st.step, c.chunkFn, arg)
		return
	}
	// Task complete: the shuffle copies the output off the local disk,
	// releasing the space.
	w.Disk.Delete(st.written)
	w.running--
	c.js.runningN--
	c.js.mapsDone++
	started := st.started
	c.releaseSlot(slot)
	c.taskTimes.Observe(c.sim.Now() - started)
	c.schedule()
}

// reduceDone retires one reducer scheduled by maybeFinish.
//
//smartconf:hotpath
func (c *Cluster) reduceDone(arg uint64) {
	if uint32(arg) != c.epoch || c.current == nil {
		return
	}
	c.js.runningN--
	c.js.reducersUp++
	c.maybeFinish()
}

func (c *Cluster) maybeFinish() {
	js := c.current
	if js == nil || js.pendingN > 0 || js.runningN > 0 {
		return
	}
	// All map tasks are done; run the reduce phase once, if the job has one.
	// Reducers read the shuffled intermediates over the network and write
	// their output to the distributed store, so they occupy task slots but
	// place no admission demand on the local disks.
	if js.job.Reducers > 0 && !js.reducing {
		js.reducing = true
		perReducer := js.job.InputBytes
		if js.job.SpillRatio > 0 {
			perReducer = int64(float64(perReducer) * js.job.SpillRatio)
		}
		perReducer /= int64(js.job.Reducers)
		d := time.Duration(float64(perReducer) / float64(c.cfg.TaskBytesPerSec) * float64(time.Second))
		js.runningN += js.job.Reducers
		for r := 0; r < js.job.Reducers; r++ {
			c.sim.AfterArg(d, c.reduceFn, uint64(c.epoch))
		}
		return
	}
	c.current = nil
	res := JobResult{
		Duration:    c.sim.Now() - js.started,
		Failed:      js.failedTasks > 0,
		FailedTasks: js.failedTasks,
		TotalTasks:  js.job.MapTasks(),
	}
	if res.Failed {
		c.jobsFailed.Inc()
	} else {
		c.jobsDone.Inc()
	}
	if js.done != nil {
		js.done(res)
	}
}
