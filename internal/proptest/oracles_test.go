package proptest

import (
	"testing"
	"time"

	"smartconf/internal/chaos"
)

func baseReport() *Report {
	r := &Report{
		Substrate: "toy",
		Plan:      "plan",
		Seed:      1,
		Horizon:   100 * time.Second,
		Drained:   true,
		Progress:  500,
		Goal:      []Sample{{0, 10}},
		Upper:     true,
		KnobMin:   0,
		KnobMax:   100,
		Faults:    []chaos.Window{{Start: 40 * time.Second, End: 50 * time.Second}},
	}
	for t := time.Second; t <= r.Horizon; t += time.Second {
		r.Metric = append(r.Metric, Sample{t, 8})
		r.Knob = append(r.Knob, Sample{t, 50})
	}
	return r
}

func TestOraclesPassOnCleanRun(t *testing.T) {
	r := baseReport()
	for name, err := range map[string]error{
		"Drains":                 Drains(r),
		"MakesProgress":          MakesProgress(r, 100),
		"ConfInBounds":           ConfInBounds(r),
		"HardGoalBounded":        HardGoalBounded(r, 10*time.Second),
		"RecoversAfterClearance": RecoversAfterClearance(r, 20*time.Second),
	} {
		if err != nil {
			t.Errorf("%s failed on a clean run: %v", name, err)
		}
	}
}

func TestDrainsFailsOnPrematureStop(t *testing.T) {
	r := baseReport()
	r.Drained = false
	if Drains(r) == nil {
		t.Fatal("Drains passed a run that stopped early")
	}
}

func TestMakesProgressFailsOnIdleRun(t *testing.T) {
	r := baseReport()
	r.Progress = 3
	if MakesProgress(r, 100) == nil {
		t.Fatal("MakesProgress passed an idle run")
	}
}

func TestConfInBoundsCatchesExcursion(t *testing.T) {
	r := baseReport()
	r.Knob[7].V = 101
	if ConfInBounds(r) == nil {
		t.Fatal("ConfInBounds missed an out-of-range knob value")
	}
}

func TestHardGoalBoundedAllowsTransientInsideWindow(t *testing.T) {
	r := baseReport()
	// Violation during the fault window and within the settle allowance.
	r.Metric[44].V = 12 // t=45s, inside [40s,50s]
	r.Metric[54].V = 12 // t=55s, inside the +10s settle tail
	if err := HardGoalBounded(r, 10*time.Second); err != nil {
		t.Fatalf("transient violation inside the allowance rejected: %v", err)
	}
	// The same excursion outside any window must fail.
	r.Metric[79].V = 12 // t=80s: steady state
	if HardGoalBounded(r, 10*time.Second) == nil {
		t.Fatal("steady-state violation accepted")
	}
}

func TestHardGoalBoundedFailsOnCrash(t *testing.T) {
	r := baseReport()
	r.Crashed, r.CrashedAt = true, 45*time.Second
	if HardGoalBounded(r, 10*time.Second) == nil {
		t.Fatal("HardGoalBounded passed a crashed run")
	}
}

func TestRecoversAfterClearance(t *testing.T) {
	r := baseReport()
	// Violations up to 20s past clearance (50s) are tolerated…
	r.Metric[64].V = 12 // t=65s ≤ 50s+20s? no: 65 < 70, tolerated
	if err := RecoversAfterClearance(r, 20*time.Second); err != nil {
		t.Fatalf("violation inside the recovery budget rejected: %v", err)
	}
	// …but not beyond it.
	r.Metric[89].V = 12 // t=90s > 70s
	if RecoversAfterClearance(r, 20*time.Second) == nil {
		t.Fatal("missed a post-recovery-deadline violation")
	}
}

func TestLowerBoundDirection(t *testing.T) {
	r := baseReport()
	r.Upper = false
	r.Goal = []Sample{{0, 5}}
	// All metric samples are 8 ≥ 5: fine for a lower bound.
	if err := HardGoalBounded(r, 0); err != nil {
		t.Fatalf("lower-bound run rejected: %v", err)
	}
	r.Metric[79].V = 3 // steady-state dip below the floor
	if HardGoalBounded(r, 0) == nil {
		t.Fatal("missed a lower-bound violation")
	}
}

func TestGoalAtIsStepwise(t *testing.T) {
	r := &Report{Goal: []Sample{{0, 10}, {50 * time.Second, 5}}}
	if got := r.GoalAt(30 * time.Second); got != 10 {
		t.Errorf("GoalAt(30s) = %v, want 10", got)
	}
	if got := r.GoalAt(50 * time.Second); got != 5 {
		t.Errorf("GoalAt(50s) = %v, want 5", got)
	}
	if got := r.GoalAt(90 * time.Second); got != 5 {
		t.Errorf("GoalAt(90s) = %v, want 5", got)
	}
}

func TestReplaysComparesFingerprints(t *testing.T) {
	a, b := baseReport(), baseReport()
	if Replays(a, b) == nil {
		t.Fatal("Replays must reject reports without fingerprints")
	}
	a.ComputeFingerprint()
	b.ComputeFingerprint()
	if err := Replays(a, b); err != nil {
		t.Fatalf("identical runs flagged as divergent: %v", err)
	}
	b.Metric[3].V += 1e-12 // even a last-bit wiggle must be caught
	b.ComputeFingerprint()
	if Replays(a, b) == nil {
		t.Fatal("Replays missed a sub-epsilon divergence")
	}
}

func TestGenPlanDeterministicAndWindowed(t *testing.T) {
	const horizon = 400 * time.Second
	a := GenPlan("p", 7, horizon, 0, 100)
	b := GenPlan("p", 7, horizon, 0, 100)
	if a.String() != b.String() {
		t.Fatalf("same seed, different plans: %s vs %s", a, b)
	}
	if len(a.Faults) < 1 || len(a.Faults) > 3 {
		t.Fatalf("fault count %d outside [1,3]", len(a.Faults))
	}
	// Across seeds, plans must vary.
	distinct := map[string]bool{}
	for seed := int64(0); seed < 20; seed++ {
		p := GenPlan("p", seed, horizon, 0, 100)
		distinct[p.String()] = true
		for _, w := range p.Windows(horizon) {
			if w.Start < horizon/4 || w.End > 3*horizon/4 {
				t.Errorf("seed %d: window %v outside [h/4, 3h/4]", seed, w)
			}
		}
	}
	if len(distinct) < 10 {
		t.Errorf("only %d distinct plans over 20 seeds", len(distinct))
	}
}

func TestGenPhasesDeterministicAndValid(t *testing.T) {
	a := GenPhases(3, 4)
	b := GenPhases(3, 4)
	if len(a) != 4 {
		t.Fatalf("got %d phases, want 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, different phases at %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].WriteRatio < 0 || a[i].WriteRatio > 1 {
			t.Errorf("phase %d write ratio %v outside [0,1]", i, a[i].WriteRatio)
		}
		if a[i].RequestBytes < 1024 || a[i].RequestBytes > 1<<20 {
			t.Errorf("phase %d request bytes %d outside [1KiB,1MiB]", i, a[i].RequestBytes)
		}
		if a[i].OpsPerSec <= 0 {
			t.Errorf("phase %d rate %v not positive", i, a[i].OpsPerSec)
		}
		last := i == len(a)-1
		if last != (a[i].Duration == 0) {
			t.Errorf("phase %d duration %v: only the last phase may be open-ended", i, a[i].Duration)
		}
	}
}
