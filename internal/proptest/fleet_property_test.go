// Fleet property tests: every substrate's three-member fleet, run through a
// seeded loss/restart plan, must satisfy the fleet oracle set — the fleet
// drains, no request is lost across the instance loss (retry routing plus
// evacuation re-dispatch account for every submission), and routing replays
// identically. External test package for the same reason as the chaos
// properties: the harnesses live in internal/experiments.
//
// Replay a failure exactly: go test ./internal/proptest/ -run TestFleet -seed=N
// Long sweep (CI nightly):  go test ./internal/proptest/ -run TestFleet -quick=false
package proptest_test

import (
	"fmt"
	"testing"

	"smartconf/internal/experiments"
	"smartconf/internal/proptest"
)

func fleetSeeds() []int64 {
	if *seedFlag != 0 {
		return []int64{*seedFlag}
	}
	if *quickFlag {
		return []int64{1, 2}
	}
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestFleetProperties holds every substrate × seed fleet run to the
// conservation and drain oracles, then replays it and holds the pair to the
// stability oracles.
func TestFleetProperties(t *testing.T) {
	for _, sub := range experiments.FleetSubstrates() {
		for _, seed := range fleetSeeds() {
			t.Run(fmt.Sprintf("%s/seed=%d", sub, seed), func(t *testing.T) {
				a := experiments.RunFleetProperty(sub, seed)
				b := experiments.RunFleetProperty(sub, seed)
				if a.Lost < 1 {
					t.Fatalf("fleet run lost %d instances; the plan must kill one", a.Lost)
				}
				for name, err := range map[string]error{
					"FleetDrains":    proptest.FleetDrains(&a),
					"NoRequestLost":  proptest.NoRequestLost(&a),
					"AffinityStable": proptest.AffinityStable(&a, &b),
					"FleetReplays":   proptest.FleetReplays(&a, &b),
				} {
					if err != nil {
						t.Errorf("%s: %v", name, err)
					}
				}
				if t.Failed() {
					t.Logf("counters: submitted=%d completed=%d refused=%d pending=%d",
						a.Submitted, a.Completed, a.Refused, a.Pending)
					t.Logf("replay: go test ./internal/proptest/ -run 'TestFleetProperties/%s' -seed=%d", sub, seed)
				}
			})
		}
	}
}
