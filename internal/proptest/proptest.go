// Package proptest is the property-based testing layer over internal/chaos:
// seed-driven generators for fault plans and workloads, plus reusable
// invariant oracles applied to a Report — the structured outcome of one
// chaos run against any substrate.
//
// The oracles encode what SmartConf promises rather than hand-picked
// expectations:
//
//   - Drains: the simulation reaches its horizon — no deadlock/livelock.
//   - MakesProgress: the substrate completed work despite the faults.
//   - ConfInBounds: every applied knob value stayed within [Min,Max].
//   - HardGoalBounded: the constrained metric exceeded its goal only within
//     a fault window plus the transient settling bound (Eq. 2 converges
//     geometrically with ratio p, so bounded settle time is the contract).
//   - RecoversAfterClearance: after the last fault clears, the metric is
//     back under the goal within K control periods and stays there.
//   - Replays: two runs of the same (plan, seed) are byte-identical.
//
// Any test that can phrase its run as a Report gets the whole oracle set for
// free; the experiments package's chaos harnesses produce Reports for all
// five substrates.
package proptest

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"time"

	"smartconf/internal/chaos"
	"smartconf/internal/declog"
)

// Sample is one time-series point of a chaos run.
type Sample struct {
	T time.Duration
	V float64
}

// Report is the structured outcome of one chaos run: enough trajectory to
// evaluate every oracle, plus a fingerprint for replay comparison.
type Report struct {
	Substrate string
	Plan      string
	Seed      int64
	Horizon   time.Duration

	// Drained is true when the run reached Horizon (no deadlock/livelock).
	Drained bool
	// Progress counts completed work units (ops, writes, jobs, requests).
	Progress int64
	// Crashed reports a substrate death (OOM, OOD) and when.
	Crashed   bool
	CrashedAt time.Duration

	// Goal is the stepwise constraint target (first sample at T=0; later
	// samples are mid-run goal changes). Upper gives the bound direction.
	Goal  []Sample
	Upper bool

	// Metric and Knob are the constrained-metric and applied-knob traces.
	Metric []Sample
	Knob   []Sample
	// KnobMin and KnobMax are the declared actuator bounds.
	KnobMin, KnobMax float64

	// Faults lists the plan's fault windows (chaos.Plan.Windows).
	Faults []chaos.Window

	Fingerprint string
}

// GoalAt returns the goal in force at time t (the last Goal sample at or
// before t; 0 when the report declares no goal).
func (r *Report) GoalAt(t time.Duration) float64 {
	var g float64
	for _, s := range r.Goal {
		if s.T > t {
			break
		}
		g = s.V
	}
	return g
}

// violated reports whether metric value v breaks the goal g for the report's
// bound direction.
func (r *Report) violated(v, g float64) bool {
	if r.Upper {
		return v > g
	}
	return v < g
}

// ComputeFingerprint hashes the full observable trajectory. Two runs of the
// same (plan, seed) must produce equal fingerprints; the %.17g format makes
// the comparison exact to the last bit of every float64.
func (r *Report) ComputeFingerprint() {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%v|%v|%d|%v|%v|", r.Substrate, r.Plan, r.Seed,
		r.Horizon, r.Drained, r.Progress, r.Crashed, r.CrashedAt)
	for _, s := range r.Metric {
		fmt.Fprintf(h, "m%v=%.17g;", s.T, s.V)
	}
	for _, s := range r.Knob {
		fmt.Fprintf(h, "k%v=%.17g;", s.T, s.V)
	}
	r.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
}

// Drains fails when the simulation did not reach its horizon: a wedged
// event loop, a drained scheduler, or a crash-induced stop all surface here.
func Drains(r *Report) error {
	if !r.Drained {
		return fmt.Errorf("%s/%s: simulation did not drain to horizon %v (deadlock/livelock or premature stop)",
			r.Substrate, r.Plan, r.Horizon)
	}
	return nil
}

// MakesProgress fails when fewer than min work units completed: a system
// that survives faults by serving nothing has not survived them.
func MakesProgress(r *Report, min int64) error {
	if r.Progress < min {
		return fmt.Errorf("%s/%s: progress %d < %d — the substrate stopped doing work",
			r.Substrate, r.Plan, r.Progress, min)
	}
	return nil
}

// ConfInBounds fails when any applied knob value left [KnobMin, KnobMax]:
// no fault may push the actuator outside its declared range.
func ConfInBounds(r *Report) error {
	for _, s := range r.Knob {
		if s.V < r.KnobMin || s.V > r.KnobMax {
			return fmt.Errorf("%s/%s: knob %v at %v outside [%v,%v]",
				r.Substrate, r.Plan, s.V, s.T, r.KnobMin, r.KnobMax)
		}
	}
	return nil
}

// HardGoalBounded fails when the constrained metric broke its goal outside
// every fault window's transient allowance [w.Start, w.End+settle], or when
// the substrate crashed at all. settle bounds the Eq. 2 settling transient:
// the controller may overshoot while a fault is active and for at most
// settle afterwards, never in steady state.
func HardGoalBounded(r *Report, settle time.Duration) error {
	if r.Crashed {
		return fmt.Errorf("%s/%s: substrate crashed at %v", r.Substrate, r.Plan, r.CrashedAt)
	}
	for _, s := range r.Metric {
		if !r.violated(s.V, r.GoalAt(s.T)) {
			continue
		}
		if !insideAllowance(r.Faults, s.T, settle) {
			return fmt.Errorf("%s/%s: metric %v at %v breaks goal %v outside every fault window (+%v settle)",
				r.Substrate, r.Plan, s.V, s.T, r.GoalAt(s.T), settle)
		}
	}
	return nil
}

func insideAllowance(windows []chaos.Window, t, settle time.Duration) bool {
	for _, w := range windows {
		if t >= w.Start && t <= w.End+settle {
			return true
		}
	}
	return false
}

// RecoversAfterClearance fails when the metric still breaks the goal more
// than `within` after the last fault window closed: fault clearance must be
// followed by re-convergence within K control periods. Vacuously passes when
// the horizon leaves no post-recovery samples to judge.
func RecoversAfterClearance(r *Report, within time.Duration) error {
	var clear time.Duration
	for _, w := range r.Faults {
		if w.End > clear {
			clear = w.End
		}
	}
	deadline := clear + within
	for _, s := range r.Metric {
		if s.T <= deadline {
			continue
		}
		if r.violated(s.V, r.GoalAt(s.T)) {
			return fmt.Errorf("%s/%s: metric %v at %v still breaks goal %v — no recovery within %v of fault clearance (%v)",
				r.Substrate, r.Plan, s.V, s.T, r.GoalAt(s.T), within, clear)
		}
	}
	return nil
}

// Replays fails when two runs of the same (plan, seed) diverged. This is
// the determinism contract that makes every chaos finding reproducible from
// its seed alone.
func Replays(a, b *Report) error {
	if a.Fingerprint == "" || b.Fingerprint == "" {
		return fmt.Errorf("replay oracle needs computed fingerprints")
	}
	if a.Fingerprint != b.Fingerprint {
		return fmt.Errorf("%s/%s seed %d: replay diverged (%s vs %s)",
			a.Substrate, a.Plan, a.Seed, a.Fingerprint, b.Fingerprint)
	}
	return nil
}

// LogReplays is the decision-log replay oracle: re-executing a captured run
// with zero perturbations must reproduce both the observable trajectory
// (Replays) and the decision log itself, byte for byte — and the envelope's
// fingerprint must be the one the original run computed, so a serialized log
// can always be tied back to its run.
func LogReplays(orig *Report, origEnv declog.Envelope, replay *Report, replayEnv declog.Envelope) error {
	if err := Replays(orig, replay); err != nil {
		return err
	}
	if origEnv.Fingerprint != orig.Fingerprint {
		return fmt.Errorf("%s/%s seed %d: envelope fingerprint %q != run fingerprint %q",
			orig.Substrate, orig.Plan, orig.Seed, origEnv.Fingerprint, orig.Fingerprint)
	}
	a, err := declog.Encode(origEnv)
	if err != nil {
		return fmt.Errorf("%s/%s seed %d: encoding original log: %w", orig.Substrate, orig.Plan, orig.Seed, err)
	}
	b, err := declog.Encode(replayEnv)
	if err != nil {
		return fmt.Errorf("%s/%s seed %d: encoding replayed log: %w", orig.Substrate, orig.Plan, orig.Seed, err)
	}
	if !bytes.Equal(a, b) {
		return fmt.Errorf("%s/%s seed %d: zero-perturbation replay produced a different decision log (%d vs %d bytes)",
			orig.Substrate, orig.Plan, orig.Seed, len(a), len(b))
	}
	return nil
}
