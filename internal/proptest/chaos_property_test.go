// Property tests: every substrate, run under seed-generated fault plans,
// must satisfy the full oracle set. External test package — the harnesses
// live in internal/experiments, which imports proptest for the Report type,
// so an internal test here would cycle.
//
// Replay a failure exactly: go test ./internal/proptest/ -run TestChaos -seed=N
// Long sweep (CI nightly):  go test ./internal/proptest/ -run TestChaos -quick=false
package proptest_test

import (
	"flag"
	"fmt"
	"testing"

	"smartconf/internal/declog"
	"smartconf/internal/experiments"
	"smartconf/internal/proptest"
)

var (
	seedFlag  = flag.Int64("seed", 0, "run chaos property tests under this single seed (0 = default seed set)")
	quickFlag = flag.Bool("quick", true, "small seed set; -quick=false runs the long sweep")
)

func chaosSeeds() []int64 {
	if *seedFlag != 0 {
		return []int64{*seedFlag}
	}
	if *quickFlag {
		return []int64{1, 2}
	}
	seeds := make([]int64, 16)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestChaosProperties is the invariant harness: for every substrate × seed,
// generate a fault plan from the seed, run the substrate's SmartConf loop
// through it (decision logging on — logging is observation-only), and hold
// the run to the oracle set, including the decision-log replay oracle: the
// captured log, round-tripped through the serialization codec and re-executed
// with zero perturbations, must reproduce the run byte-identically.
func TestChaosProperties(t *testing.T) {
	for _, sub := range experiments.ChaosSubstrates() {
		for _, seed := range chaosSeeds() {
			t.Run(fmt.Sprintf("%s/seed=%d", sub, seed), func(t *testing.T) {
				r, env := experiments.RunChaosPropertyLogged(sub, seed)
				p := experiments.ChaosParams(sub)

				// Round-trip the envelope through the codec before replaying:
				// the oracle then also proves a *serialized* log carries
				// everything a replay needs.
				encoded, err := declog.Encode(env)
				if err != nil {
					t.Fatalf("encoding decision log: %v", err)
				}
				parsed, err := declog.Parse(encoded)
				if err != nil {
					t.Fatalf("parsing decision log: %v", err)
				}
				rr, renv, err := experiments.ReplayEnvelope(parsed, declog.Perturb{})
				if err != nil {
					t.Fatalf("replaying decision log: %v", err)
				}

				for name, err := range map[string]error{
					"Drains":                 proptest.Drains(&r),
					"MakesProgress":          proptest.MakesProgress(&r, p.MinProgress),
					"ConfInBounds":           proptest.ConfInBounds(&r),
					"HardGoalBounded":        proptest.HardGoalBounded(&r, p.Settle),
					"RecoversAfterClearance": proptest.RecoversAfterClearance(&r, p.Recover),
					"LogReplays":             proptest.LogReplays(&r, env, &rr, renv),
				} {
					if err != nil {
						t.Errorf("%s: %v", name, err)
					}
				}
				if t.Failed() {
					t.Logf("replay: go test ./internal/proptest/ -run 'TestChaosProperties/%s' -seed=%d", sub, seed)
				}
			})
		}
	}
}

// TestChaosReplay is the determinism property: two genuine (uncached)
// executions of the same (substrate, seed) must be byte-identical.
func TestChaosReplay(t *testing.T) {
	for _, sub := range experiments.ChaosSubstrates() {
		t.Run(sub, func(t *testing.T) {
			a := experiments.RunChaosProperty(sub, 5)
			b := experiments.RunChaosProperty(sub, 5)
			if err := proptest.Replays(&a, &b); err != nil {
				t.Fatal(err)
			}
		})
	}
}
