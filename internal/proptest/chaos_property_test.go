// Property tests: every substrate, run under seed-generated fault plans,
// must satisfy the full oracle set. External test package — the harnesses
// live in internal/experiments, which imports proptest for the Report type,
// so an internal test here would cycle.
//
// Replay a failure exactly: go test ./internal/proptest/ -run TestChaos -seed=N
// Long sweep (CI nightly):  go test ./internal/proptest/ -run TestChaos -quick=false
package proptest_test

import (
	"flag"
	"fmt"
	"testing"

	"smartconf/internal/experiments"
	"smartconf/internal/proptest"
)

var (
	seedFlag  = flag.Int64("seed", 0, "run chaos property tests under this single seed (0 = default seed set)")
	quickFlag = flag.Bool("quick", true, "small seed set; -quick=false runs the long sweep")
)

func chaosSeeds() []int64 {
	if *seedFlag != 0 {
		return []int64{*seedFlag}
	}
	if *quickFlag {
		return []int64{1, 2}
	}
	seeds := make([]int64, 16)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	return seeds
}

// TestChaosProperties is the invariant harness: for every substrate × seed,
// generate a fault plan from the seed, run the substrate's SmartConf loop
// through it, and hold the run to the oracle set.
func TestChaosProperties(t *testing.T) {
	for _, sub := range experiments.ChaosSubstrates() {
		for _, seed := range chaosSeeds() {
			t.Run(fmt.Sprintf("%s/seed=%d", sub, seed), func(t *testing.T) {
				r := experiments.RunChaosProperty(sub, seed)
				p := experiments.ChaosParams(sub)
				for name, err := range map[string]error{
					"Drains":                 proptest.Drains(&r),
					"MakesProgress":          proptest.MakesProgress(&r, p.MinProgress),
					"ConfInBounds":           proptest.ConfInBounds(&r),
					"HardGoalBounded":        proptest.HardGoalBounded(&r, p.Settle),
					"RecoversAfterClearance": proptest.RecoversAfterClearance(&r, p.Recover),
				} {
					if err != nil {
						t.Errorf("%s: %v", name, err)
					}
				}
				if t.Failed() {
					t.Logf("replay: go test ./internal/proptest/ -run 'TestChaosProperties/%s' -seed=%d", sub, seed)
				}
			})
		}
	}
}

// TestChaosReplay is the determinism property: two genuine (uncached)
// executions of the same (substrate, seed) must be byte-identical.
func TestChaosReplay(t *testing.T) {
	for _, sub := range experiments.ChaosSubstrates() {
		t.Run(sub, func(t *testing.T) {
			a := experiments.RunChaosProperty(sub, 5)
			b := experiments.RunChaosProperty(sub, 5)
			if err := proptest.Replays(&a, &b); err != nil {
				t.Fatal(err)
			}
		})
	}
}
