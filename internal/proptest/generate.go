package proptest

import (
	"fmt"
	"math/rand"
	"time"

	"smartconf/internal/chaos"
	"smartconf/internal/workload"
)

// GenPlan derives a control-loop fault plan deterministically from seed: one
// to three faults drawn from the loop-fault catalog, every window inside
// [horizon/4, 3·horizon/4] so the run has clean lead-in and recovery
// quarters for the settling and recovery oracles to judge. knobLo/knobHi are
// the actuator bounds; the clamp fault restricts within them (it models a
// degraded actuator, not an out-of-range one).
func GenPlan(name string, seed int64, horizon time.Duration, knobLo, knobHi float64) *chaos.Plan {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(3)
	faults := make([]chaos.Fault, 0, n)
	for i := 0; i < n; i++ {
		// Window: start in [h/4, h/2], duration in [h/20, h/4] — always fully
		// cleared by 3h/4.
		start := horizon/4 + time.Duration(rng.Int63n(int64(horizon/4)))
		duration := horizon/20 + time.Duration(rng.Int63n(int64(horizon/5)))
		switch rng.Intn(7) {
		case 0:
			faults = append(faults, chaos.SensorNoise{
				Start: start, Duration: duration,
				Sigma: 0.02 + 0.08*rng.Float64(),
			})
		case 1:
			faults = append(faults, chaos.SensorDropout{
				Start: start, Duration: duration,
				Prob: 0.3 + 0.6*rng.Float64(),
			})
		case 2:
			faults = append(faults, chaos.SensorStaleness{
				Start: start, Duration: duration,
				Delay: time.Second + time.Duration(rng.Int63n(int64(4*time.Second))),
			})
		case 3:
			faults = append(faults, chaos.ActuationDelay{
				Start: start, Duration: duration,
				Delay: 500*time.Millisecond + time.Duration(rng.Int63n(int64(2*time.Second))),
			})
		case 4:
			// Clamp into the lower part of the range: conservative for
			// upper-bound goals (the knob can close, not blow open).
			hi := knobLo + (0.25+0.75*rng.Float64())*(knobHi-knobLo)
			faults = append(faults, chaos.ActuationClamp{
				Start: start, Duration: duration,
				Min: knobLo, Max: hi,
			})
		case 5:
			faults = append(faults, chaos.ControllerStall{
				Start: start, Duration: duration,
			})
		default:
			faults = append(faults, chaos.ControllerCrash{
				At: start, RestartAfter: duration,
			})
		}
	}
	return &chaos.Plan{Name: name, Seed: seed, Faults: faults}
}

// GenPhases derives an n-phase YCSB workload schedule deterministically from
// seed (the workload half of the generator pair). Every phase but the last
// carries a finite duration; the last runs to the end of the experiment.
func GenPhases(seed int64, n int) []workload.YCSBPhase {
	rng := rand.New(rand.NewSource(seed))
	phases := make([]workload.YCSBPhase, 0, n)
	for i := 0; i < n; i++ {
		p := workload.YCSBPhase{
			Name:         fmt.Sprintf("gen-%d", i),
			WriteRatio:   float64(rng.Intn(11)) / 10,
			RequestBytes: 1024 << rng.Intn(11), // 1 KiB … 1 MiB
			CacheRatio:   float64(rng.Intn(6)) / 10,
			OpsPerSec:    float64(1 + rng.Intn(100)),
		}
		if i < n-1 {
			p.Duration = time.Duration(60+rng.Intn(240)) * time.Second
		}
		phases = append(phases, p)
	}
	return phases
}
