package proptest

import (
	"fmt"
	"hash/fnv"
	"time"
)

// FleetReport is the observable trajectory of one fleet run, as produced by
// a substrate-specific fleet harness: conservation counters for the
// dispatched requests, the routing trace fingerprint, and enough identity to
// compare replays. Like Report, it is pure data — the oracles below consume
// it without re-running anything.
type FleetReport struct {
	// Substrate and Policy identify the harness ("RPC" × "key-affinity").
	Substrate string
	Policy    string
	// Seed drove the workload, the noise, and the chaos plan.
	Seed int64
	// Horizon is the virtual end of the run.
	Horizon time.Duration
	// Members is the fleet width; Lost counts members killed during the run.
	Members int
	Lost    int

	// Conservation counters. Every request submitted to the fleet must end
	// in exactly one of: completed by some member, refused (throttled or
	// rejected fleet-wide), or still pending at the horizon.
	Submitted int64
	Completed int64
	Refused   int64
	Pending   int64

	// RouteFingerprint hashes the (key → member) placement sequence; two
	// replays of a deterministic fleet must agree on it, and under
	// key-affinity it captures routing stability.
	RouteFingerprint string

	// Fingerprint summarizes the whole report (set by ComputeFingerprint).
	Fingerprint string
}

// ComputeFingerprint hashes the report's observable fields into Fingerprint.
// Two runs of the same (substrate, policy, seed) must produce equal
// fingerprints — the fleet replay oracle.
func (r *FleetReport) ComputeFingerprint() {
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|%d|", r.Substrate, r.Policy, r.Seed, r.Horizon, r.Members, r.Lost)
	fmt.Fprintf(h, "%d|%d|%d|%d|", r.Submitted, r.Completed, r.Refused, r.Pending)
	fmt.Fprintf(h, "%s", r.RouteFingerprint)
	r.Fingerprint = fmt.Sprintf("%016x", h.Sum64())
}

// FleetDrains checks that the fleet finished its work: once the workload
// stops and the horizon is reached, no request may still be queued or in
// flight anywhere in the fleet.
func FleetDrains(r *FleetReport) error {
	if r.Pending != 0 {
		return fmt.Errorf("fleet did not drain: %d requests still pending at horizon %v", r.Pending, r.Horizon)
	}
	return nil
}

// NoRequestLost checks conservation across instance loss: with retry routing
// and evacuation re-dispatch, every submitted request is accounted for —
// completed somewhere, refused explicitly, or still pending. A request that
// silently vanishes (killed with its member, double-counted by a stale
// callback) breaks the balance.
func NoRequestLost(r *FleetReport) error {
	if got := r.Completed + r.Refused + r.Pending; got != r.Submitted {
		return fmt.Errorf("request conservation violated: submitted %d but completed %d + refused %d + pending %d = %d",
			r.Submitted, r.Completed, r.Refused, r.Pending, got)
	}
	return nil
}

// AffinityStable checks that two replays of the same fleet run routed every
// request identically — under key-affinity this is the rendezvous-hashing
// stability guarantee, and under any policy it is routing determinism.
func AffinityStable(a, b *FleetReport) error {
	if a.RouteFingerprint != b.RouteFingerprint {
		return fmt.Errorf("routing diverged across replays: %s vs %s", a.RouteFingerprint, b.RouteFingerprint)
	}
	return nil
}

// FleetReplays checks that two runs of the same (substrate, policy, seed)
// produced identical whole-run fingerprints.
func FleetReplays(a, b *FleetReport) error {
	if a.Fingerprint == "" || b.Fingerprint == "" {
		return fmt.Errorf("fleet fingerprint not computed")
	}
	if a.Fingerprint != b.Fingerprint {
		return fmt.Errorf("fleet replay diverged: %s vs %s", a.Fingerprint, b.Fingerprint)
	}
	return nil
}
