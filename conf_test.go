package smartconf

import (
	"math"
	"sync"
	"testing"
	"time"
)

// linearProfile builds a clean profile for the plant s = alpha·c + base.
func linearProfile(alpha, base float64, settings ...float64) *Profile {
	p := NewProfile()
	for _, s := range settings {
		for i := 0; i < 10; i++ {
			p.Add(s, alpha*s+base)
		}
	}
	return p
}

// noisyProfile adds a deterministic ±noise ripple so that λ and Δ are
// non-zero and hard-goal machinery engages.
func noisyProfile(alpha, base, noise float64, settings ...float64) *Profile {
	p := NewProfile()
	for _, s := range settings {
		for i := 0; i < 10; i++ {
			v := alpha*s + base
			if i%2 == 0 {
				v += noise * v
			} else {
				v -= noise * v
			}
			p.Add(s, v)
		}
	}
	return p
}

func TestNewRequiresProfile(t *testing.T) {
	if _, err := New(Spec{Name: "x", Goal: 10}, nil); err == nil {
		t.Error("expected error without profile")
	}
	if _, err := New(Spec{Name: "x", Goal: 10}, NewProfile()); err == nil {
		t.Error("expected error with empty profile")
	}
}

func TestConfConvergesToSoftGoal(t *testing.T) {
	alpha, base := 2.0, 100.0
	sc, err := New(Spec{
		Name: "queue", Metric: "mem", Goal: 500, Max: 1e6,
	}, linearProfile(alpha, base, 10, 50, 100, 200))
	if err != nil {
		t.Fatal(err)
	}
	v := sc.Value()
	for i := 0; i < 100; i++ {
		sc.SetPerf(alpha*v + base)
		v = sc.Value()
	}
	if math.Abs(alpha*v+base-500) > 1e-6 {
		t.Errorf("steady-state performance = %v, want 500", alpha*v+base)
	}
}

func TestConfIntegerRounding(t *testing.T) {
	sc, err := New(Spec{Name: "q", Metric: "m", Goal: 11, Max: 100},
		linearProfile(2, 0, 1, 5, 10))
	if err != nil {
		t.Fatal(err)
	}
	sc.SetPerf(0)
	// Deadbeat: wants c = 5.5 → int rounds to 6 (invariant: Conf==round(Value)).
	iv := sc.Conf()
	if iv != int(math.Round(sc.Value())) {
		t.Errorf("Conf() = %d inconsistent with Value() = %v", iv, sc.Value())
	}
}

func TestConfNoNewMeasurementKeepsValue(t *testing.T) {
	sc, err := New(Spec{Name: "q", Metric: "m", Goal: 100, Max: 1e6},
		linearProfile(1, 0, 10, 20, 30))
	if err != nil {
		t.Fatal(err)
	}
	sc.SetPerf(50)
	v1 := sc.Value()
	v2 := sc.Value() // no new SetPerf in between
	if v1 != v2 {
		t.Errorf("value moved without fresh measurement: %v → %v", v1, v2)
	}
	sc.SetPerf(50)
	v3 := sc.Value()
	if v3 == v1 && math.Abs(100-50) > 0 {
		// Exact deadbeat may converge in one step; only require monotone
		// progress toward the goal, not inequality. Recompute expectation:
		t.Logf("controller converged in one step (v=%v)", v3)
	}
}

func TestConfHardGoalUsesVirtualGoal(t *testing.T) {
	sc, err := New(Spec{Name: "q", Metric: "mem", Goal: 1000, Hard: true, Max: 1e6},
		noisyProfile(2, 0, 0.1, 10, 50, 100, 200))
	if err != nil {
		t.Fatal(err)
	}
	vg := sc.VirtualGoal()
	if !(vg < 1000) || vg <= 0 {
		t.Errorf("virtual goal = %v, want strictly inside (0, 1000)", vg)
	}
	if p := sc.Pole(); p < 0 || p >= 1 {
		t.Errorf("pole = %v, want [0,1)", p)
	}
}

func TestConfSetGoalTakesEffect(t *testing.T) {
	alpha := 2.0
	sc, err := New(Spec{Name: "q", Metric: "mem", Goal: 500, Max: 1e6},
		linearProfile(alpha, 0, 10, 100, 200))
	if err != nil {
		t.Fatal(err)
	}
	v := sc.Value()
	for i := 0; i < 50; i++ {
		sc.SetPerf(alpha * v)
		v = sc.Value()
	}
	if math.Abs(alpha*v-500) > 1e-6 {
		t.Fatalf("pre-change steady state = %v", alpha*v)
	}
	sc.SetGoal(200)
	if sc.Goal() != 200 {
		t.Fatalf("Goal() = %v after SetGoal", sc.Goal())
	}
	for i := 0; i < 50; i++ {
		sc.SetPerf(alpha * v)
		v = sc.Value()
	}
	if math.Abs(alpha*v-200) > 1e-6 {
		t.Errorf("post-change steady state = %v, want 200", alpha*v)
	}
}

func TestConfAlertOnUnreachableGoal(t *testing.T) {
	var mu sync.Mutex
	var alerts []Alert
	sc, err := New(Spec{Name: "q", Metric: "mem", Goal: 10000, Max: 5},
		linearProfile(1, 0, 1, 3, 5),
		WithAlert(func(a Alert) {
			mu.Lock()
			alerts = append(alerts, a)
			mu.Unlock()
		}),
		WithAlertThreshold(3))
	if err != nil {
		t.Fatal(err)
	}
	// Goal 10000 with max conf 5 and α=1: unreachable — conf pins at 5.
	for i := 0; i < 10; i++ {
		sc.SetPerf(5)
		sc.Value()
	}
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(alerts)
		mu.Unlock()
		if n > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no alert fired for unreachable goal")
		case <-time.After(time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	a := alerts[0]
	if a.Conf != "q" || a.Metric != "mem" || a.Goal != 10000 {
		t.Errorf("alert = %+v", a)
	}
	if len(alerts) != 1 {
		t.Errorf("alert fired %d times for one saturation episode, want 1", len(alerts))
	}
	if a.String() == "" {
		t.Error("Alert.String empty")
	}
}

func TestConfConcurrentAccess(t *testing.T) {
	sc, err := New(Spec{Name: "q", Metric: "m", Goal: 100, Max: 1e6},
		linearProfile(1, 0, 10, 20, 30))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sc.SetPerf(float64((seed * i) % 200))
				_ = sc.Value()
				_ = sc.Conf()
			}
		}(g)
	}
	wg.Wait() // race detector is the assertion
}

func TestSpecGoalMapping(t *testing.T) {
	g := Spec{Metric: "m", Goal: 5, SuperHard: true}.goal()
	if !g.Hard {
		t.Error("super-hard must imply hard")
	}
	lb := Spec{Metric: "m", Goal: 5, LowerBound: true}.goal()
	if lb.Bound.String() != "lower" {
		t.Errorf("bound = %v, want lower", lb.Bound)
	}
}
