module smartconf

go 1.22
