// Benchmarks regenerating every table and figure of the paper's evaluation,
// plus micro-benchmarks of the controller hot path. One benchmark per
// artifact:
//
//	go test -bench=BenchmarkTable2StudySuite   # or any other single artifact
//	go test -bench=. -benchmem                 # everything
//
// The table/figure benchmarks run the full deterministic simulation behind
// each artifact, so their ns/op measures the cost of regenerating the
// artifact (milliseconds for the study tables, ~0.1–1 s for the evaluation
// sweeps that the paper spent hours of testbed time on).
package smartconf_test

import (
	"runtime"
	"testing"

	"smartconf"
	"smartconf/internal/experiments"
	"smartconf/internal/experiments/engine"
	"smartconf/internal/study"
)

// ---- Tables 2–5: the empirical study ----

func BenchmarkTable2StudySuite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := study.BuildTable2()
		if t.PerfIssues.Total() != 80 {
			b.Fatal("study drifted from the paper")
		}
	}
}

func BenchmarkTable3PatchTypes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := study.BuildTable3()
		if t.Categories[study.FixPoorDefault].Total() != 24 {
			b.Fatal("study drifted from the paper")
		}
	}
}

func BenchmarkTable4Impact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := study.BuildTable4()
		if t.Indirect.Total() != 45 {
			b.Fatal("study drifted from the paper")
		}
	}
}

func BenchmarkTable5Setting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := study.BuildTable5()
		if t.Factors[study.Dynamic].Total() != 72 {
			b.Fatal("study drifted from the paper")
		}
	}
}

// ---- Table 6 and Figure 5: the benchmark suite and its headline result ----

func BenchmarkTable6Suite(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if len(experiments.RenderTable6()) == 0 {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure5Tradeoffs regenerates the full six-issue comparison
// (every static sweep plus SmartConf, with profiling) at the default worker
// count — all CPUs. Compare against BenchmarkFigure5TradeoffsSequential for
// the experiment engine's fan-out speedup.
func BenchmarkFigure5Tradeoffs(b *testing.B) {
	benchmarkFigure5AtWorkers(b, runtime.GOMAXPROCS(0))
}

// BenchmarkFigure5TradeoffsSequential is the same regeneration pinned to one
// worker — the pre-engine sequential baseline.
func BenchmarkFigure5TradeoffsSequential(b *testing.B) {
	benchmarkFigure5AtWorkers(b, 1)
}

func benchmarkFigure5AtWorkers(b *testing.B, workers int) {
	prev := engine.SetWorkers(workers)
	defer engine.SetWorkers(prev)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		rows := experiments.BuildFigure5()
		if len(rows) != 6 {
			b.Fatal("missing scenarios")
		}
	}
	b.StopTimer()
	experiments.ResetRunCache()
}

// BenchmarkFigure5DiskCacheCold measures the full Figure 5 rebuild while
// populating the persistent cache: the one-time cost a -cachedir user pays.
func BenchmarkFigure5DiskCacheCold(b *testing.B) {
	benchmarkFigure5Disk(b, false)
}

// BenchmarkFigure5DiskCacheWarm is the payoff: the same rebuild with every
// run already on disk and the in-memory cache dropped each iteration, as a
// fresh `smartconf-bench -cachedir` process would see it. Zero simulations
// execute; ns/op is pure decode + render.
func BenchmarkFigure5DiskCacheWarm(b *testing.B) {
	benchmarkFigure5Disk(b, true)
}

func benchmarkFigure5Disk(b *testing.B, warm bool) {
	experiments.ResetRunCache()
	defer func() {
		experiments.EnablePersistentRunCache("")
		experiments.ResetRunCache()
	}()
	if err := experiments.EnablePersistentRunCache(b.TempDir()); err != nil {
		b.Fatal(err)
	}
	if warm {
		experiments.BuildFigure5() // populate the disk outside the timer
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !warm {
			// Point the layer at an empty directory so every iteration
			// simulates and stores, rather than reloading iteration 1's files.
			b.StopTimer()
			if err := experiments.EnablePersistentRunCache(b.TempDir()); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		experiments.ResetRunCache()
		rows := experiments.BuildFigure5()
		if len(rows) != 6 {
			b.Fatal("missing scenarios")
		}
	}
	b.StopTimer()
	if warm {
		if exec, _ := experiments.RunCacheStats(); exec != 0 {
			b.Fatalf("warm iteration executed %d simulations", exec)
		}
	}
}

// Per-issue Figure 5 rows, for quicker single-issue regeneration.
func benchFigure5Row(b *testing.B, id string) {
	sc, ok := experiments.ScenarioByID(id)
	if !ok {
		b.Fatalf("unknown scenario %s", id)
	}
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		row := experiments.BuildFigure5Row(sc)
		if !row.Bars[0].ConstraintMet {
			b.Fatalf("%s: SmartConf violated its constraint", id)
		}
	}
}

func BenchmarkFigure5_CA6059(b *testing.B) { benchFigure5Row(b, "CA6059") }
func BenchmarkFigure5_HB2149(b *testing.B) { benchFigure5Row(b, "HB2149") }
func BenchmarkFigure5_HB3813(b *testing.B) { benchFigure5Row(b, "HB3813") }
func BenchmarkFigure5_HB6728(b *testing.B) { benchFigure5Row(b, "HB6728") }
func BenchmarkFigure5_HD4995(b *testing.B) { benchFigure5Row(b, "HD4995") }
func BenchmarkFigure5_MR2820(b *testing.B) { benchFigure5Row(b, "MR2820") }

// ---- Figures 6–8 ----

func BenchmarkFigure6CaseStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		f := experiments.BuildFigure6()
		if !f.SmartConf.ConstraintMet {
			b.Fatal("SmartConf violated the constraint")
		}
	}
}

func BenchmarkFigure7Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		f := experiments.BuildFigure7()
		if !f.SmartConf.ConstraintMet || f.SinglePole.ConstraintMet || f.NoVirtualGoal.ConstraintMet {
			b.Fatal("ablation outcome drifted from the paper")
		}
	}
}

func BenchmarkFigure8Interacting(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		f := experiments.BuildFigure8()
		if f.OOM {
			b.Fatal("interacting controllers OOMed")
		}
	}
}

// ---- Table 7 ----

func BenchmarkTable7LoC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CountIntegrationLoC()
		if err != nil || len(rows) < 6 { // six paper issues + any extensions
			b.Fatalf("rows=%d err=%v", len(rows), err)
		}
	}
}

// ---- Micro-benchmarks: the controller hot path ----

// BenchmarkControllerUpdate measures one setPerf+getConf cycle — the cost
// SmartConf adds to every instrumented call site.
func BenchmarkControllerUpdate(b *testing.B) {
	profile := smartconf.NewProfile()
	for _, s := range []float64{40, 80, 120, 160} {
		for i := 0; i < 10; i++ {
			profile.Add(s, 2*s+100+float64(i%5))
		}
	}
	sc, err := smartconf.New(smartconf.Spec{
		Name: "bench", Metric: "m", Goal: 500, Hard: true, Max: 1e9,
	}, profile)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.SetPerf(float64(200 + i%100))
		_ = sc.Conf()
	}
}

// BenchmarkIndirectUpdate is the same cycle through the indirect-conf path.
func BenchmarkIndirectUpdate(b *testing.B) {
	profile := smartconf.NewProfile()
	for _, s := range []float64{40, 80, 120, 160} {
		for i := 0; i < 10; i++ {
			profile.Add(s, 2*s+100+float64(i%5))
		}
	}
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name: "bench", Metric: "m", Goal: 500, Hard: true, Max: 1e9,
	}, profile, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ic.SetPerf(float64(200+i%100), float64(i%80))
		_ = ic.Conf()
	}
}

// BenchmarkSynthesis measures full controller synthesis from a 40-sample
// profile (the constructor-time cost).
func BenchmarkSynthesis(b *testing.B) {
	profile := smartconf.NewProfile()
	for _, s := range []float64{40, 80, 120, 160} {
		for i := 0; i < 10; i++ {
			profile.Add(s, 2*s+100+float64(i%7))
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := smartconf.New(smartconf.Spec{
			Name: "bench", Metric: "m", Goal: 500, Hard: true, Max: 1e9,
		}, profile); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Ablations beyond the paper (design-choice benches) ----

func BenchmarkAblationPoles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		rows := experiments.AblationPoles()
		for _, r := range rows {
			if !r.ConstraintMet {
				b.Fatalf("pole %v violated the constraint", r.Pole)
			}
		}
	}
}

func BenchmarkAblationVirtualGoalMargin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		rows := experiments.AblationVirtualGoalMargin()
		if rows[0].ConstraintMet { // λ = 0 must fail
			b.Fatal("no-margin run unexpectedly satisfied the constraint")
		}
	}
}

func BenchmarkAblationInteraction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		a := experiments.AblationInteractionFactor()
		if a.WithFactor.OOM {
			b.Fatal("coordinated controllers OOMed")
		}
	}
}

func BenchmarkAblationAdaptive(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		a := experiments.AblationAdaptiveModel()
		if !a.Adaptive.ConstraintMet {
			b.Fatal("adaptive run violated the constraint")
		}
	}
}

func BenchmarkAblationProfilingDepth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		rows := experiments.AblationProfilingDepth()
		if !rows[0].ConstraintMet {
			b.Fatal("full-profile run violated the constraint")
		}
	}
}

// BenchmarkRobustnessSweep runs the §6.1 wide-workload sweep: one profiled
// controller against 54 unseen workloads.
func BenchmarkRobustnessSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		for _, c := range experiments.RunRobustnessSweep() {
			if !c.ConstraintMet {
				b.Fatalf("constraint violated: %+v", c)
			}
		}
	}
}

// BenchmarkBackendAIMD compares the synthesized controller against the AIMD
// heuristic baseline.
func BenchmarkBackendAIMD(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		c := experiments.AblationBackendAIMD()
		if !c.SmartConf.ConstraintMet {
			b.Fatal("SmartConf violated its constraint")
		}
	}
}

// ---- Extensions beyond the paper ----

func BenchmarkExtensionSLA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		r := experiments.RunSLAScenario(experiments.SmartConf())
		if !r.ConstraintMet {
			b.Fatalf("SLA missed: p99 = %.2fs", r.P99)
		}
	}
}

func BenchmarkExtensionDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		r := experiments.RunDistributedHB3813(4)
		if !r.ConstraintMet {
			b.Fatalf("violations: %v", r.Violations)
		}
	}
}

// BenchmarkFleetComparison regenerates the full fleet artifact: profiling,
// the SmartConf fleet and every static fleet, each a 4-instance run under
// skewed load with a seeded instance loss and restart.
func BenchmarkFleetComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.ResetRunCache()
		results := experiments.BuildFleetComparison()
		for _, r := range results {
			if r.Policy.Kind == experiments.SmartConfPolicy && !experiments.FleetQualifies(r) {
				b.Fatalf("SmartConf fleet missed a goal: %s", experiments.RenderFleet(results))
			}
		}
	}
}
