package smartconf

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"smartconf/internal/sysfile"
)

// Manager owns the file-driven SmartConf workflow (§4.1): it loads the
// developer-facing system file (configuration → metric bindings, initial
// values, profiling switch) and the user-facing goals file (numeric targets,
// hard/super-hard flags), constructs controllers on demand, and coordinates
// configurations that share a super-hard goal.
type Manager struct {
	mu    sync.Mutex
	sys   *sysfile.Sys
	goals sysfile.Goals // guardedby: mu
	o     options

	profileSource func(conf string) (*Profile, error)

	confs     map[string]*Conf         // guardedby: mu
	indirects map[string]*IndirectConf // guardedby: mu
}

// ManagerOption customizes Manager construction.
type ManagerOption func(*Manager)

// WithProfileDir makes the Manager load profiling data from
// dir/<ConfName>.SmartConf.sys, the paper's on-disk layout (§5.5).
func WithProfileDir(dir string) ManagerOption {
	return func(m *Manager) {
		m.profileSource = func(conf string) (*Profile, error) {
			f, err := os.Open(filepath.Join(dir, conf+".SmartConf.sys"))
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return ReadProfile(f)
		}
	}
}

// WithProfileSource supplies profiling data programmatically, e.g. from a
// profiling campaign that just ran in the same process.
func WithProfileSource(src func(conf string) (*Profile, error)) ManagerOption {
	return func(m *Manager) { m.profileSource = src }
}

// WithConfOptions forwards Conf options (alerts, thresholds) to every
// configuration the Manager constructs.
func WithConfOptions(opts ...Option) ManagerOption {
	return func(m *Manager) { m.o = applyOptions(opts) }
}

// NewManager parses the system file and goals file.
func NewManager(sys, goals io.Reader, opts ...ManagerOption) (*Manager, error) {
	s, err := sysfile.ParseSys(sys)
	if err != nil {
		return nil, fmt.Errorf("smartconf: parsing system file: %w", err)
	}
	g, err := sysfile.ParseGoals(goals)
	if err != nil {
		return nil, fmt.Errorf("smartconf: parsing goals file: %w", err)
	}
	m := &Manager{
		sys:       s,
		goals:     g,
		o:         applyOptions(nil),
		confs:     make(map[string]*Conf),
		indirects: make(map[string]*IndirectConf),
	}
	for _, opt := range opts {
		opt(m)
	}
	return m, nil
}

// NewManagerFromFiles is NewManager over two file paths, defaulting the
// profile directory to the system file's directory.
func NewManagerFromFiles(sysPath, goalsPath string, opts ...ManagerOption) (*Manager, error) {
	sf, err := os.Open(sysPath)
	if err != nil {
		return nil, err
	}
	defer sf.Close()
	gf, err := os.Open(goalsPath)
	if err != nil {
		return nil, err
	}
	defer gf.Close()
	all := append([]ManagerOption{WithProfileDir(filepath.Dir(sysPath))}, opts...)
	return NewManager(sf, gf, all...)
}

// Profiling reports whether the system file enables profiling mode.
func (m *Manager) Profiling() bool { return m.sys.Profiling }

// specLocked assembles the Spec for one configuration from the two files,
// including the §5.4 interaction factor for super-hard goals (counted over
// the system file's bindings, whether or not the siblings are open yet).
// Callers must hold m.mu (it reads the live goals table).
func (m *Manager) specLocked(name string) (Spec, error) {
	b, ok := m.sys.Binding(name)
	if !ok {
		return Spec{}, fmt.Errorf("smartconf: configuration %q not in system file", name)
	}
	g, ok := m.goals[b.Metric]
	if !ok {
		return Spec{}, fmt.Errorf("smartconf: no goal declared for metric %q (configuration %q)", b.Metric, name)
	}
	spec := Spec{
		Name:       name,
		Metric:     b.Metric,
		Goal:       g.Target,
		Hard:       g.Hard,
		SuperHard:  g.SuperHard,
		LowerBound: g.LowerBound,
		Initial:    b.Initial,
		Min:        b.Min,
		Max:        b.Max,
	}
	if g.SuperHard {
		spec.Interaction = len(m.sys.MetricConfs(b.Metric))
	}
	return spec, nil
}

func (m *Manager) loadProfile(name string) (*Profile, error) {
	if m.profileSource == nil {
		return nil, fmt.Errorf("smartconf: no profile source configured (use WithProfileDir or WithProfileSource)")
	}
	p, err := m.profileSource(name)
	if err != nil {
		return nil, fmt.Errorf("smartconf: loading profile for %q: %w", name, err)
	}
	return p, nil
}

// Conf opens (or returns the already-open) direct configuration name.
// In profiling mode the returned Conf records samples instead of adjusting.
func (m *Manager) Conf(name string) (*Conf, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if c, ok := m.confs[name]; ok {
		return c, nil
	}
	if _, ok := m.indirects[name]; ok {
		return nil, fmt.Errorf("smartconf: configuration %q already open as indirect", name)
	}
	spec, err := m.specLocked(name)
	if err != nil {
		return nil, err
	}
	var c *Conf
	if m.sys.Profiling {
		c = newProfilingConf(spec, m.o)
	} else {
		profile, err := m.loadProfile(name)
		if err != nil {
			return nil, err
		}
		c, err = New(spec, profile, withResolved(m.o))
		if err != nil {
			return nil, err
		}
	}
	m.confs[name] = c
	return c, nil
}

// IndirectConf opens (or returns the already-open) indirect configuration
// name, with t mapping desired deputy values to threshold settings
// (nil means the identity transducer).
func (m *Manager) IndirectConf(name string, t Transducer) (*IndirectConf, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ic, ok := m.indirects[name]; ok {
		return ic, nil
	}
	if _, ok := m.confs[name]; ok {
		return nil, fmt.Errorf("smartconf: configuration %q already open as direct", name)
	}
	spec, err := m.specLocked(name)
	if err != nil {
		return nil, err
	}
	if t == nil {
		t = Identity()
	}
	var ic *IndirectConf
	if m.sys.Profiling {
		ic = &IndirectConf{conf: newProfilingConf(spec, m.o), transducer: t}
	} else {
		profile, err := m.loadProfile(name)
		if err != nil {
			return nil, err
		}
		ic, err = NewIndirect(spec, profile, t, withResolved(m.o))
		if err != nil {
			return nil, err
		}
	}
	m.indirects[name] = ic
	return ic, nil
}

// withResolved converts an already-resolved options value back into an
// Option so constructors can reuse it.
func withResolved(o options) Option {
	return func(dst *options) { *dst = o }
}

// SetGoal updates the goal for a metric at run time and propagates it to
// every open configuration bound to that metric.
func (m *Manager) SetGoal(metric string, target float64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.goals[metric]
	if !ok {
		return fmt.Errorf("smartconf: unknown metric %q", metric)
	}
	g.Target = target
	m.goals[metric] = g
	for _, name := range m.sys.MetricConfs(metric) {
		if c, ok := m.confs[name]; ok {
			c.SetGoal(target)
		}
		if ic, ok := m.indirects[name]; ok {
			ic.SetGoal(target)
		}
	}
	return nil
}

// ReloadGoals re-reads a goals file at run time and propagates every changed
// target to the open configurations — the file-level counterpart of SetGoal,
// for deployments where operators edit the goals file in place and signal
// the process.
func (m *Manager) ReloadGoals(r io.Reader) error {
	fresh, err := sysfile.ParseGoals(r)
	if err != nil {
		return fmt.Errorf("smartconf: reloading goals: %w", err)
	}
	m.mu.Lock()
	var changed []string
	for metric, spec := range fresh {
		old, ok := m.goals[metric]
		if !ok {
			// New metrics become available to later Conf() calls.
			m.goals[metric] = spec
			continue
		}
		//smartconf:allow floatcmp -- change detection on operator-entered targets is exact by design: any edit, however small, is intentional
		if old.Target != spec.Target {
			old.Target = spec.Target
			m.goals[metric] = old
			changed = append(changed, metric)
		}
	}
	// Propagate in sorted order so map iteration does not decide the order
	// in which configurations observe a multi-metric reload.
	sort.Strings(changed)
	targets := make([]float64, len(changed))
	for i, metric := range changed {
		targets[i] = m.goals[metric].Target
	}
	m.mu.Unlock()
	for i, metric := range changed {
		if err := m.SetGoal(metric, targets[i]); err != nil {
			return err
		}
	}
	return nil
}

// FlushProfiles writes the profiling samples of every open configuration to
// dir/<ConfName>.SmartConf.sys. It is a no-op outside profiling mode.
func (m *Manager) FlushProfiles(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.sys.Profiling {
		return nil
	}
	flush := func(name string, p *Profile) error {
		if p == nil || p.Len() == 0 {
			return nil
		}
		f, err := os.Create(filepath.Join(dir, name+".SmartConf.sys"))
		if err != nil {
			return err
		}
		defer f.Close()
		return p.Write(f)
	}
	// Flush in sorted name order so the first error to surface (and the
	// file-creation order) does not depend on map iteration.
	names := make([]string, 0, len(m.confs)+len(m.indirects))
	for name := range m.confs {
		names = append(names, name)
	}
	for name := range m.indirects {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		p := (*Profile)(nil)
		if c, ok := m.confs[name]; ok {
			p = c.CollectedProfile()
		} else {
			p = m.indirects[name].CollectedProfile()
		}
		if err := flush(name, p); err != nil {
			return fmt.Errorf("smartconf: flushing profile for %q: %w", name, err)
		}
	}
	return nil
}
