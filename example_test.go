package smartconf_test

import (
	"fmt"
	"strings"

	"smartconf"
)

// ExampleNew shows the minimal direct-configuration flow: profile, declare
// the goal, then call the setPerf/getConf pair at every use site.
func ExampleNew() {
	// The plant: block time = 4 + 4·fraction seconds (deterministic here).
	blockTime := func(fraction float64) float64 { return 4 + 4*fraction }

	profile, _ := smartconf.DefaultPlan(0.2, 0.8, 4).Run(func(setting float64) (float64, error) {
		return blockTime(setting), nil
	})
	sc, err := smartconf.New(smartconf.Spec{
		Name:   "memstore.flush.fraction",
		Metric: "write_block_time",
		Goal:   6.0, // seconds, soft
		Min:    0.01, Max: 1,
	}, profile)
	if err != nil {
		panic(err)
	}

	fraction := 0.1
	for i := 0; i < 5; i++ {
		sc.SetPerf(blockTime(fraction))
		fraction = sc.Value()
	}
	fmt.Printf("fraction %.2f → block %.1fs (goal 6.0s)\n", fraction, blockTime(fraction))
	// Output: fraction 0.50 → block 6.0s (goal 6.0s)
}

// ExampleNewIndirect shows a threshold configuration: the controller steers
// the deputy variable (queue length) and the knob bounds it.
func ExampleNewIndirect() {
	heap := func(queueLen float64) float64 { return 100 + 2*queueLen } // MB

	profile := smartconf.NewProfile().
		Add(40, heap(40), heap(40)).
		Add(80, heap(80), heap(80)).
		Add(120, heap(120), heap(120))
	ic, err := smartconf.NewIndirect(smartconf.Spec{
		Name:   "max.queue.size",
		Metric: "memory_consumption",
		Goal:   500, // MB
		Min:    0, Max: 10_000,
	}, profile, nil)
	if err != nil {
		panic(err)
	}

	queueLen := 60.0
	ic.SetPerf(heap(queueLen), queueLen)
	fmt.Printf("max.queue.size → %d (queue may grow to the 500MB budget)\n", ic.Conf())
	// Output: max.queue.size → 200 (queue may grow to the 500MB budget)
}

// ExampleNewManager shows the file-driven workflow: the developer-owned
// system file, the user-owned goals file, and a profile source.
func ExampleNewManager() {
	sys := `
max.queue.size @ memory_consumption
max.queue.size = 0
max.queue.size.max = 5000
`
	goals := `
memory_consumption.goal = 500
memory_consumption.goal.hard = 1
`
	mgr, err := smartconf.NewManager(strings.NewReader(sys), strings.NewReader(goals),
		smartconf.WithProfileSource(func(string) (*smartconf.Profile, error) {
			return smartconf.NewProfile().
				Add(40, 180, 182).Add(80, 260, 258).Add(120, 340, 342), nil
		}))
	if err != nil {
		panic(err)
	}
	sc, err := mgr.IndirectConf("max.queue.size", nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("goal %.0f, hard constraint with virtual goal below it: %v\n",
		sc.Goal(), sc.VirtualGoal() < sc.Goal())
	// Output: goal 500, hard constraint with virtual goal below it: true
}

// ExampleProfile_Diagnose shows the §6.6 hazard check: a U-shaped plant is
// flagged as out of SmartConf's scope.
func ExampleProfile_Diagnose() {
	uShaped := smartconf.NewProfile().
		Add(1, 90, 90, 90).
		Add(2, 40, 40, 40).
		Add(3, 35, 35, 35).
		Add(4, 80, 80, 80)
	for _, warning := range uShaped.Diagnose() {
		fmt.Println(strings.SplitN(warning, ":", 2)[0])
	}
	// Output:
	// non-monotonic
	// weak-fit
}
