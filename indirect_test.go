package smartconf

import (
	"math"
	"testing"
)

// boundedQueue is a toy deputy: its size chases the threshold from below
// (intake limited by the threshold, drain is slower than intake).
type boundedQueue struct {
	size  float64
	limit float64
}

func (q *boundedQueue) step(arrivals, drains float64) {
	q.size += arrivals
	if q.size > q.limit {
		q.size = q.limit // bounded intake
	}
	q.size -= drains
	if q.size < 0 {
		q.size = 0
	}
}

func TestIndirectConfSteersDeputy(t *testing.T) {
	// Plant: memory = 3·queue.size + 50. Hard goal: memory ≤ 500.
	alpha, base := 3.0, 50.0
	profile := NewProfile()
	for _, s := range []float64{10, 40, 80, 120} {
		for i := 0; i < 10; i++ {
			profile.Add(s, alpha*s+base)
		}
	}
	ic, err := NewIndirect(Spec{
		Name: "max.queue.size", Metric: "mem", Goal: 500, Max: 1e6,
	}, profile, nil)
	if err != nil {
		t.Fatal(err)
	}

	q := &boundedQueue{limit: 0}
	for i := 0; i < 300; i++ {
		mem := alpha*q.size + base
		ic.SetPerf(mem, q.size)
		q.limit = ic.Value()
		q.step(30, 10)
	}
	mem := alpha*q.size + base
	if mem > 500+1e-6 {
		t.Errorf("steady-state memory %v exceeds goal 500", mem)
	}
	// (500-50)/3 = 150: the queue should be allowed near there, not squashed.
	if q.size < 100 {
		t.Errorf("queue size %v needlessly conservative, want ≈150", q.size)
	}
}

// SetGoal on an IndirectConf takes the goal in METRIC space, exactly like a
// direct Conf — transduction applies only on the actuator path (Value), and
// the PR-4 sensor-hook audit confirmed no caller pre-scales the goal. This
// test pins that contract with a non-identity transducer: retargeting must
// not pass through Scale, the virtual-goal ratio (1−λ) must survive the
// retarget, and the threshold must converge so the METRIC meets the new goal.
func TestIndirectConfSetGoalIsMetricSpaceWithTransducer(t *testing.T) {
	// Plant: memory = 3·items + 50; threshold is in BYTES at 8 bytes/item.
	alpha, base := 3.0, 50.0
	const bytesPerItem = 8.0
	profile := NewProfile()
	for _, s := range []float64{10, 40, 80, 120} {
		for i := 0; i < 9; i++ {
			profile.Add(s, alpha*s+base+float64(i%3-1)) // ±1 jitter → λ > 0
		}
	}
	ic, err := NewIndirect(Spec{
		Name: "max.queue.bytes", Metric: "mem", Goal: 500, Hard: true, Max: 1e6,
	}, profile, Scale(bytesPerItem))
	if err != nil {
		t.Fatal(err)
	}
	ratio := ic.VirtualGoal() / ic.Goal()
	if ratio <= 0 || ratio >= 1 {
		t.Fatalf("hard upper-bound virtual/goal ratio = %v, want in (0,1)", ratio)
	}

	q := &boundedQueue{limit: 0}
	settle := func() {
		for i := 0; i < 300; i++ {
			ic.SetPerf(alpha*q.size+base, q.size)
			q.limit = ic.Value() / bytesPerItem // transduced: bytes → items
			q.step(30, 10)
		}
	}
	settle()
	if mem := alpha*q.size + base; mem > 500+1e-6 {
		t.Fatalf("steady-state memory %v exceeds goal 500", mem)
	}

	ic.SetGoal(320)
	if got := ic.Goal(); got != 320 {
		t.Fatalf("Goal() = %v after SetGoal(320); a transduced goal would be %v or %v",
			got, 320*bytesPerItem, 320/bytesPerItem)
	}
	if got := ic.VirtualGoal() / 320; math.Abs(got-ratio) > 1e-9 {
		t.Errorf("virtual/goal ratio %v after SetGoal, want %v (λ is profiled, not goal-dependent)", got, ratio)
	}
	settle()
	mem := alpha*q.size + base
	if mem > 320+1e-6 {
		t.Errorf("memory %v exceeds the tightened goal 320", mem)
	}
	// Not needlessly conservative either: if SetGoal had been divided by the
	// transducer scale (goal 40), the queue would be squashed to nothing.
	if mem < 160 {
		t.Errorf("memory %v far below goal 320; SetGoal appears transduced", mem)
	}
}

func TestIndirectConfUsesDeputyCurrentValue(t *testing.T) {
	// §5.3: the update starts from the deputy's current value. With pole 0,
	// α=1, base 0 and goal G, desired deputy = deputy + (G - measured).
	profile := NewProfile()
	for _, s := range []float64{10, 20, 30} {
		profile.Add(s, s, s, s)
	}
	ic, err := NewIndirect(Spec{Name: "c", Metric: "m", Goal: 100, Max: 1e6}, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	ic.SetPerf(40, 7) // e = 60, deputy = 7 → desired 67
	if got := ic.Value(); math.Abs(got-67) > 1e-9 {
		t.Errorf("threshold = %v, want 67 (deputy 7 + error 60)", got)
	}
	// Same measurement but a different deputy: threshold must differ.
	ic.SetPerf(40, 30)
	if got := ic.Value(); math.Abs(got-90) > 1e-9 {
		t.Errorf("threshold = %v, want 90 (deputy 30 + error 60)", got)
	}
}

func TestTransducers(t *testing.T) {
	if got := Identity().Transduce(42); got != 42 {
		t.Errorf("Identity = %v", got)
	}
	if got := Scale(2.5).Transduce(4); got != 10 {
		t.Errorf("Scale(2.5)(4) = %v, want 10", got)
	}
	custom := TransducerFunc(func(d float64) float64 { return d + 1 })
	if got := custom.Transduce(1); got != 2 {
		t.Errorf("TransducerFunc = %v", got)
	}
}

func TestIndirectConfCustomTransducer(t *testing.T) {
	profile := NewProfile()
	for _, s := range []float64{10, 20, 30} {
		profile.Add(s, 2*s, 2*s)
	}
	// Threshold is in bytes; deputy is items of 1024 bytes each.
	ic, err := NewIndirect(Spec{Name: "bytes.limit", Metric: "m", Goal: 40, Max: 1e9},
		profile, Scale(1024))
	if err != nil {
		t.Fatal(err)
	}
	ic.SetPerf(0, 0) // desired deputy = 0 + (40-0)/2 = 20 → threshold 20480
	if got := ic.Value(); math.Abs(got-20480) > 1e-6 {
		t.Errorf("threshold = %v, want 20480", got)
	}
	if ic.Conf() != 20480 {
		t.Errorf("Conf() = %d, want 20480", ic.Conf())
	}
}

func TestIndirectConfGoalAndDiagnostics(t *testing.T) {
	profile := NewProfile()
	for _, s := range []float64{1, 2, 3} {
		profile.Add(s, s, s)
	}
	ic, err := NewIndirect(Spec{Name: "c", Metric: "m", Goal: 10, Max: 100}, profile, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ic.Name() != "c" || ic.String() == "" {
		t.Error("identity accessors broken")
	}
	ic.SetGoal(20)
	if ic.Goal() != 20 {
		t.Errorf("Goal = %v, want 20", ic.Goal())
	}
	if ic.Profiling() {
		t.Error("should not be in profiling mode")
	}
	if p := ic.Pole(); p < 0 || p >= 1 {
		t.Errorf("pole = %v", p)
	}
	if ic.CollectedProfile() != nil {
		t.Error("CollectedProfile should be nil outside profiling mode")
	}
}

func TestNewIndirectRequiresProfile(t *testing.T) {
	if _, err := NewIndirect(Spec{Name: "c", Goal: 1}, nil, nil); err == nil {
		t.Error("expected error without profile")
	}
}
